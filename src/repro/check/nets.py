"""Petri-net models of the four FCM floor-control channels.

The paper's Section 4 describes floor control per *channel*: the
session message window (free access), the equal-control token, a
discussion subgroup's private board, and a two-person direct-contact
window.  Each model here renders one mode's channel as a
place/transition net whose **floor-token mutual exclusion** —
at most one member delivering on the channel at any instant — is a
*linear* safety property, so the inductive engine
(:mod:`repro.check.induct`) can PROVE it from a place invariant
instead of enumerating states:

* ``free_access`` — every member may ask at will, but delivery into
  the shared message window serializes on the server's window token;
* ``equal_control`` — the classic token: ``floor_free`` plus one
  holder place per member, requests and releases move the single
  token;
* ``group_discussion`` — members must first accept an invitation
  (``outside -> invited``), and only invited members compete for the
  subgroup board token;
* ``direct_contact`` — the two peers alternate on a private window
  token while every other member keeps using the session channel, so
  the net carries *two* independent channels (the paper: direct
  contact coexists with the other modes).

Every model also ships the scalable ``product_cycles`` workload used
by bench E13: independent token cycles whose state space is
``length ** cycles``, the ≥50k-state net the explicit engine is timed
on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.modes import FCMMode
from ..errors import CheckError
from ..petri.net import PetriNet
from .props import DeadlockFree, EventuallyFires, Mutex, PlaceBound, Property

__all__ = ["FloorModel", "floor_model", "member_places", "product_cycles"]


@dataclass(frozen=True)
class FloorModel:
    """One FCM mode's floor-control channel as a checkable net.

    ``channel_places`` are the per-member delivery places of the mode's
    primary channel — the places whose token sum the mutual-exclusion
    property bounds; ``properties`` is the model's bound suite (the
    mutex first, then supporting safety/liveness properties).
    """

    mode: FCMMode
    net: PetriNet
    channel_places: tuple[str, ...]
    properties: tuple[Property, ...]

    @property
    def mutex(self) -> Mutex:
        """The headline mutual-exclusion property of the channel."""
        for prop in self.properties:
            if isinstance(prop, Mutex) and set(prop.places) == set(
                self.channel_places
            ):
                return prop
        raise CheckError(
            f"model {self.net.name!r} lost its channel mutex property"
        )


def member_places(prefix: str, members: int) -> tuple[str, ...]:
    """The per-member place names ``prefix_m0 .. prefix_m<members-1>``."""
    return tuple(f"{prefix}_m{i}" for i in range(members))


def _token_channel(
    net: PetriNet,
    token_place: str,
    idle_prefix: str,
    busy_prefix: str,
    acquire_prefix: str,
    release_prefix: str,
    member_ids: list[int],
) -> tuple[str, ...]:
    """Wire one serialized channel: ``idle + token -> busy`` and back.

    Returns the busy (delivering) place names.  The construction gives
    the channel its conservation invariant
    ``token + sum(busy) == 1`` by design, which is exactly what the
    inductive prover finds.
    """
    net.add_place(token_place, tokens=1)
    busy_places = []
    for i in member_ids:
        idle, busy = f"{idle_prefix}_m{i}", f"{busy_prefix}_m{i}"
        if idle not in net.places:
            net.add_place(idle, tokens=1)
        net.add_place(busy)
        busy_places.append(busy)
        acquire, release = f"{acquire_prefix}_m{i}", f"{release_prefix}_m{i}"
        net.add_transition(acquire)
        net.add_arc(idle, acquire)
        net.add_arc(token_place, acquire)
        net.add_arc(acquire, busy)
        net.add_transition(release)
        net.add_arc(busy, release)
        net.add_arc(release, idle)
        net.add_arc(release, token_place)
    return tuple(busy_places)


def _free_access(members: int) -> FloorModel:
    net = PetriNet("fcm-free_access")
    busy = _token_channel(
        net, "window_free", "composing", "delivering", "post", "deliver",
        list(range(members)),
    )
    properties: tuple[Property, ...] = (
        Mutex(busy),
        PlaceBound("window_free", 1),
        DeadlockFree(),
        EventuallyFires("post_m0"),
    )
    return FloorModel(FCMMode.FREE_ACCESS, net, busy, properties)


def _equal_control(members: int) -> FloorModel:
    net = PetriNet("fcm-equal_control")
    holders = _token_channel(
        net, "floor_free", "idle", "holder", "request", "release",
        list(range(members)),
    )
    properties: tuple[Property, ...] = (
        Mutex(holders),
        PlaceBound("floor_free", 1),
        DeadlockFree(),
        EventuallyFires(f"request_m{members - 1}"),
    )
    return FloorModel(FCMMode.EQUAL_CONTROL, net, holders, properties)


def _group_discussion(members: int) -> FloorModel:
    net = PetriNet("fcm-group_discussion")
    net.add_place("board_free", tokens=1)
    speaking = []
    for i in range(members):
        outside, invite = f"outside_m{i}", f"invite_m{i}"
        invited, busy = f"invited_m{i}", f"speaking_m{i}"
        net.add_place(outside, tokens=1)
        net.add_place(invite, tokens=1)
        net.add_place(invited)
        net.add_place(busy)
        speaking.append(busy)
        accept = f"accept_m{i}"
        net.add_transition(accept)
        net.add_arc(outside, accept)
        net.add_arc(invite, accept)
        net.add_arc(accept, invited)
        speak, yield_ = f"speak_m{i}", f"yield_m{i}"
        net.add_transition(speak)
        net.add_arc(invited, speak)
        net.add_arc("board_free", speak)
        net.add_arc(speak, busy)
        net.add_transition(yield_)
        net.add_arc(busy, yield_)
        net.add_arc(yield_, invited)
        net.add_arc(yield_, "board_free")
    properties: tuple[Property, ...] = (
        Mutex(tuple(speaking)),
        # Speaking without having accepted the invitation is impossible:
        # outside + invited + speaking is conserved per member.
        Mutex(("outside_m0", "speaking_m0")),
        PlaceBound("board_free", 1),
        DeadlockFree(),
        EventuallyFires("speak_m0"),
    )
    return FloorModel(
        FCMMode.GROUP_DISCUSSION, net, tuple(speaking), properties
    )


def _direct_contact(members: int) -> FloorModel:
    net = PetriNet("fcm-direct_contact")
    # The two peers (initiator m0, peer m1) share a private window.
    talking = _token_channel(
        net, "window_free", "quiet", "talking", "speak", "pause", [0, 1]
    )
    # Everyone else keeps the session's free-access channel — the paper
    # has direct contact coexist with the other modes.
    session_busy: tuple[str, ...] = ()
    if members > 2:
        session_busy = _token_channel(
            net, "session_free", "composing", "delivering", "post", "deliver",
            list(range(2, members)),
        )
    properties: list[Property] = [
        Mutex(talking),
        PlaceBound("window_free", 1),
        DeadlockFree(),
        EventuallyFires("speak_m1"),
    ]
    if session_busy:
        properties.append(Mutex(session_busy))
    return FloorModel(
        FCMMode.DIRECT_CONTACT, net, talking, tuple(properties)
    )


_BUILDERS = {
    FCMMode.FREE_ACCESS: _free_access,
    FCMMode.EQUAL_CONTROL: _equal_control,
    FCMMode.GROUP_DISCUSSION: _group_discussion,
    FCMMode.DIRECT_CONTACT: _direct_contact,
}


def floor_model(mode: FCMMode | str, members: int = 3) -> FloorModel:
    """Build the floor-control net of one FCM mode.

    ``members`` scales the per-member machinery (direct contact needs
    at least the two peers).

    Raises
    ------
    CheckError
        On fewer than two members or an unknown mode name.
    """
    if members < 2:
        raise CheckError(f"floor models need >= 2 members, got {members!r}")
    if not isinstance(mode, FCMMode):
        try:
            mode = FCMMode(mode)
        except ValueError:
            raise CheckError(
                f"unknown FCM mode {mode!r}; expected one of "
                f"{[m.value for m in FCMMode]}"
            ) from None
    return _BUILDERS[mode](members)


def product_cycles(
    cycles: int = 8, length: int = 4, name: str = "product-cycles"
) -> PetriNet:
    """Independent token cycles: state space of ``length ** cycles``.

    Each cycle is a ring of ``length`` places with one token walking
    it; cycles interleave freely, so the reachable markings are the
    full product — the scalable exploration workload bench E13 times
    the engines on (8 cycles of length 4 = 65536 states).
    """
    if cycles < 1 or length < 2:
        raise CheckError(
            f"need cycles >= 1 and length >= 2, got {cycles!r}/{length!r}"
        )
    net = PetriNet(name)
    for c in range(cycles):
        for s in range(length):
            net.add_place(f"c{c}_p{s}", tokens=1 if s == 0 else 0)
        for s in range(length):
            transition = f"c{c}_t{s}"
            net.add_transition(transition)
            net.add_arc(f"c{c}_p{s}", transition)
            net.add_arc(transition, f"c{c}_p{(s + 1) % length}")
    return net
