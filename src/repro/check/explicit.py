"""Fast explicit-state model checking with counterexample traces.

This engine replaces the dict-heavy
:func:`repro.petri.analysis.reachability_graph` path for *checking*:
the old analyser keeps every state as a ``Marking`` dict and every
edge in one flat list; here a net is compiled once into index arrays
(:class:`CompiledNet`), states are interned as fixed-place-order byte
encodings (:class:`~repro.petri.analysis.MarkingCodec`), successors
come from sparse per-transition delta lists, and properties are
evaluated on the fly as each state is discovered — so a violation
surfaces with a replayable firing trace without materialising the
whole graph.  ``ReachabilityGraph`` stays available as a thin
compatibility view (:meth:`Exploration.to_reachability_graph`).

Verdicts are never silently truncated: a safety property unviolated
within an *incomplete* exploration is ``UNKNOWN``, only a complete
sweep upgrades it to ``PROVED``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import CheckError, NotEnabledError
from ..petri.analysis import MarkingCodec, ReachabilityGraph
from ..petri.net import Marking, PetriNet
from .props import DeadlockFree, EventuallyFires, Property, Verdict

__all__ = [
    "CompiledNet",
    "Counterexample",
    "PropertyVerdict",
    "Exploration",
    "ExplicitEngine",
    "CheckReport",
    "check_explicit",
]


class CompiledNet:
    """A net lowered to integer index arrays for fast firing.

    Compilation happens once per engine; after that, enabledness is a
    few list lookups and firing is sparse addition — no ``Marking``
    dicts, no name hashing, no re-validation.
    """

    __slots__ = (
        "net",
        "codec",
        "transitions",
        "pre",
        "delta",
        "capacity_checks",
    )

    def __init__(self, net: PetriNet) -> None:
        self.net = net
        self.codec = MarkingCodec(net)
        self.transitions: tuple[str, ...] = tuple(net.transitions)
        #: per transition: ``[(place_index, required_tokens), ...]``
        self.pre: list[list[tuple[int, int]]] = []
        #: per transition: ``[(place_index, token_change), ...]`` nonzero
        self.delta: list[list[tuple[int, int]]] = []
        #: per transition: ``[(place_index, inflow, capacity), ...]``
        self.capacity_checks: list[list[tuple[int, int, int]]] = []
        for transition in self.transitions:
            inputs = net.inputs(transition)
            outputs = net.outputs(transition)
            self.pre.append(
                [
                    (self.codec.index_of(place), weight)
                    for place, weight in inputs.items()
                ]
            )
            delta: dict[int, int] = {}
            for place, weight in inputs.items():
                delta[self.codec.index_of(place)] = -weight
            for place, weight in outputs.items():
                index = self.codec.index_of(place)
                delta[index] = delta.get(index, 0) + weight
            self.delta.append(
                [(index, change) for index, change in delta.items() if change]
            )
            checks = []
            for place, weight in outputs.items():
                capacity = net.places[place].capacity
                if capacity is None:
                    continue
                index = self.codec.index_of(place)
                stays_minus = inputs.get(place, 0)
                checks.append((index, weight - stays_minus, capacity))
            self.capacity_checks.append(checks)

    def initial_counts(self) -> tuple[int, ...]:
        """The net's current marking as a counts tuple."""
        return self.codec.key(self.net.marking())

    def enabled(self, counts: Sequence[int], transition_index: int) -> bool:
        """Whether transition ``transition_index`` may fire in ``counts``
        (token sufficiency plus capacity headroom, matching
        :meth:`~repro.petri.net.PetriNet.is_enabled`)."""
        for index, required in self.pre[transition_index]:
            if counts[index] < required:
                return False
        for index, inflow, capacity in self.capacity_checks[transition_index]:
            if counts[index] + inflow > capacity:
                return False
        return True

    def fire(
        self, counts: Sequence[int], transition_index: int
    ) -> tuple[int, ...]:
        """Successor counts of firing an *enabled* transition."""
        successor = list(counts)
        for index, change in self.delta[transition_index]:
            successor[index] += change
        return tuple(successor)


@dataclass(frozen=True)
class Counterexample:
    """A replayable witness: fire ``trace`` from ``start`` (the marking
    exploration began at) to reach the violating ``marking``."""

    trace: tuple[str, ...]
    marking: Marking
    start: Marking = field(default_factory=Marking)

    def replay(self, net: PetriNet) -> Marking:
        """Fire the trace from the recorded start marking and return
        the marking reached (also asserts it matches); the net's live
        marking is restored afterwards.

        Raises
        ------
        CheckError
            If the trace does not replay to the recorded marking —
            including a trace with an unfireable step.
        """
        saved = net.marking()
        try:
            net.set_marking(self.start)
            reached = net.fire_sequence(self.trace)
        except NotEnabledError as error:
            raise CheckError(
                f"counterexample does not replay: {error}"
            ) from None
        finally:
            net.set_marking(saved)
        if reached != self.marking:
            raise CheckError(
                f"counterexample does not replay: reached {reached!r}, "
                f"recorded {self.marking!r}"
            )
        return reached


@dataclass(frozen=True)
class PropertyVerdict:
    """One property's outcome: verdict, deciding method, and evidence.

    ``method`` names what decided it (``"invariant"``,
    ``"state-equation"``, ``"explicit"``); ``counterexample`` is set on
    ``VIOLATED``, ``witness`` on a ``PROVED`` liveness property;
    ``states`` is how many markings the deciding exploration visited
    (0 for purely structural proofs); ``note`` carries the certificate
    or the budget caveat.
    """

    prop: Property
    verdict: Verdict
    method: str
    counterexample: Counterexample | None = None
    witness: tuple[str, ...] | None = None
    states: int = 0
    note: str = ""


@dataclass
class Exploration:
    """Raw exploration output: interned states and adjacency.

    ``states`` holds counts tuples in discovery (BFS) order;
    ``succ`` is the adjacency list (``(transition_index, target)``
    pairs); ``parent`` maps each non-initial state to the
    ``(source, transition_index)`` edge that discovered it, which is
    how counterexample traces are reconstructed without storing paths.
    """

    codec: MarkingCodec
    transitions: tuple[str, ...]
    states: list[tuple[int, ...]] = field(default_factory=list)
    succ: list[list[tuple[int, int]]] = field(default_factory=list)
    parent: list[tuple[int, int]] = field(default_factory=list)
    complete: bool = True
    compiled: "CompiledNet | None" = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.states)

    def trace_to(self, index: int) -> tuple[str, ...]:
        """Transition names firing from the initial marking to state
        ``index``."""
        names: list[str] = []
        while index != 0:
            source, transition_index = self.parent[index]
            names.append(self.transitions[transition_index])
            index = source
        names.reverse()
        return tuple(names)

    def marking_of(self, index: int) -> Marking:
        """State ``index`` as a :class:`~repro.petri.net.Marking`."""
        return self.codec.marking(self.states[index])

    def deadlock_indices(self) -> list[int]:
        """Genuinely dead states (no transition enabled).

        On a budget-truncated exploration, frontier states whose
        successors were never interned have empty edge lists without
        being dead — they are re-checked for enabledness rather than
        misreported (the same honesty fix
        :func:`repro.petri.analysis.find_deadlocks` carries)."""
        candidates = [i for i, out in enumerate(self.succ) if not out]
        if self.complete or self.compiled is None:
            return candidates
        compiled = self.compiled
        return [
            i
            for i in candidates
            if not any(
                compiled.enabled(self.states[i], t)
                for t in range(len(self.transitions))
            )
        ]

    def to_reachability_graph(self) -> ReachabilityGraph:
        """The legacy :class:`~repro.petri.analysis.ReachabilityGraph`
        view of this exploration (same node order, same edges)."""
        graph = ReachabilityGraph(complete=self.complete)
        graph.nodes = [self.marking_of(i) for i in range(len(self.states))]
        graph.edges.extend(
            (source, self.transitions[transition_index], target)
            for source, out in enumerate(self.succ)
            for transition_index, target in out
        )
        return graph


class ExplicitEngine:
    """Breadth-first explicit-state engine over a compiled net."""

    def __init__(self, net: PetriNet, max_states: int = 100_000) -> None:
        if max_states < 1:
            raise CheckError(f"max_states must be >= 1, got {max_states!r}")
        self.compiled = CompiledNet(net)
        self.max_states = max_states

    def explore(self) -> Exploration:
        """Enumerate up to ``max_states`` reachable markings.

        Pure exploration (no properties) — the raw-throughput path the
        E13 benchmark measures against the legacy analyser.
        """
        return self._run(())[0]

    def check(self, properties: Iterable[Property]) -> "CheckReport":
        """Explore with on-the-fly evaluation of ``properties``.

        Safety predicates are evaluated on every discovered marking;
        the search keeps going until every property is decided or the
        state budget runs out, so one sweep serves the whole batch.
        """
        props = tuple(properties)
        compiled_net = self.compiled.net
        for prop in props:
            prop.validate_against(compiled_net)
        exploration, verdicts = self._run(props)
        return CheckReport(
            net_name=compiled_net.name,
            verdicts=verdicts,
            explored=len(exploration),
            complete=exploration.complete,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _run(
        self, props: tuple[Property, ...]
    ) -> tuple[Exploration, tuple[PropertyVerdict, ...]]:
        compiled = self.compiled
        codec = compiled.codec
        encode = codec.encode
        transition_count = len(compiled.transitions)
        exploration = Exploration(
            codec=codec, transitions=compiled.transitions, compiled=compiled
        )
        states = exploration.states
        succ = exploration.succ
        parent = exploration.parent

        # Property bookkeeping.  Linear safety properties get compiled
        # coefficient lists (index, coeff) so the per-state test is a
        # sparse dot product, not a dict lookup by name.
        safety: list[tuple[int, Property, list[tuple[int, int]] | None, int]] = []
        deadlock_props: list[int] = []
        # transition index -> every property slot awaiting that firing
        # (a list: duplicate EventuallyFires must all get the verdict)
        eventually: dict[int, list[int]] = {}
        verdicts: list[PropertyVerdict | None] = [None] * len(props)
        for slot, prop in enumerate(props):
            if isinstance(prop, EventuallyFires):
                eventually.setdefault(
                    compiled.transitions.index(prop.transition), []
                ).append(slot)
            elif isinstance(prop, DeadlockFree):
                deadlock_props.append(slot)
            else:
                linear = prop.linear_bound()
                if linear is not None:
                    coeffs, bound = linear
                    sparse = [
                        (codec.index_of(place), coeff)
                        for place, coeff in coeffs.items()
                    ]
                    safety.append((slot, prop, sparse, bound))
                else:
                    safety.append((slot, prop, None, 0))

        def violated(state: Sequence[int]) -> list[int]:
            slots = []
            marking = None  # built once per state, only if some
            # non-linear property still needs a dict view
            for slot, prop, sparse, bound in safety:
                if verdicts[slot] is not None:
                    continue
                if sparse is not None:
                    total = 0
                    for index, coeff in sparse:
                        total += coeff * state[index]
                    if total > bound:
                        slots.append(slot)
                else:
                    if marking is None:
                        marking = codec.marking(state)
                    if prop.violated_by(marking):
                        slots.append(slot)
            return slots

        def undecided_remaining() -> bool:
            return any(verdict is None for verdict in verdicts)

        initial = compiled.initial_counts()
        index_of: dict[bytes, int] = {encode(initial): 0}
        states.append(initial)
        succ.append([])
        parent.append((-1, -1))

        def record_violation_slots(
            slots: list[int], trace: tuple[str, ...], marking: Marking
        ) -> None:
            start = exploration.marking_of(0)
            for slot in slots:
                verdicts[slot] = PropertyVerdict(
                    prop=props[slot],
                    verdict=Verdict.VIOLATED,
                    method="explicit",
                    counterexample=Counterexample(
                        trace=trace, marking=marking, start=start
                    ),
                    states=len(states),
                )

        def record_violations(state_index: int, slots: list[int]) -> None:
            if not slots:
                return  # trace reconstruction is O(depth); skip it
            record_violation_slots(
                slots,
                exploration.trace_to(state_index),
                exploration.marking_of(state_index),
            )

        if safety:
            record_violations(0, violated(initial))
        # The BFS below is the hot loop: transition data and containers
        # are bound to locals, and enabledness/firing are inlined
        # rather than routed through CompiledNet's methods — per-state
        # cost is what the E13 states/sec claim rests on.
        pre_lists = compiled.pre
        delta_lists = compiled.delta
        capacity_lists = compiled.capacity_checks
        max_states = self.max_states
        index_get = index_of.get
        watch_props = bool(props)
        watch_safety = bool(safety)
        watch_eventually = bool(eventually)
        queue: deque[int] = deque([0])
        queue_pop = queue.popleft
        queue_push = queue.append
        while queue:
            if watch_props and not undecided_remaining():
                # Every property is decided; stop burning budget.  The
                # exploration is marked incomplete because states may
                # remain — callers must not read it as exhaustive.
                exploration.complete = False
                break
            current_index = queue_pop()
            current = states[current_index]
            out = succ[current_index]
            any_enabled = False
            for transition_index in range(transition_count):
                enabled = True
                for index, required in pre_lists[transition_index]:
                    if current[index] < required:
                        enabled = False
                        break
                if not enabled:
                    continue
                for index, inflow, capacity in capacity_lists[transition_index]:
                    if current[index] + inflow > capacity:
                        enabled = False
                        break
                if not enabled:
                    continue
                any_enabled = True
                if watch_eventually:
                    # The firing itself is the witness — record it even
                    # when the successor will not fit the state budget.
                    for slot in eventually.get(transition_index, ()):
                        if verdicts[slot] is None:
                            verdicts[slot] = PropertyVerdict(
                                prop=props[slot],
                                verdict=Verdict.PROVED,
                                method="explicit",
                                witness=exploration.trace_to(current_index)
                                + (compiled.transitions[transition_index],),
                                states=len(states),
                            )
                successor = list(current)
                for index, change in delta_lists[transition_index]:
                    successor[index] += change
                key = encode(successor)
                target = index_get(key)
                if target is None:
                    if len(states) >= max_states:
                        exploration.complete = False
                        if watch_safety:
                            # The violating marking is already in hand;
                            # an over-budget successor must yield its
                            # VIOLATED verdict, not an UNKNOWN.
                            slots = violated(successor)
                            if slots:
                                record_violation_slots(
                                    slots,
                                    exploration.trace_to(current_index)
                                    + (compiled.transitions[transition_index],),
                                    codec.marking(successor),
                                )
                        continue
                    target = len(states)
                    index_of[key] = target
                    states.append(tuple(successor))
                    succ.append([])
                    parent.append((current_index, transition_index))
                    queue_push(target)
                    if watch_safety:
                        record_violations(target, violated(successor))
                out.append((transition_index, target))
            # Deadlock = no transition *enabled*, not "no edge recorded":
            # budget pressure can suppress edges to un-interned states.
            if not any_enabled and deadlock_props:
                slots = [
                    slot for slot in deadlock_props if verdicts[slot] is None
                ]
                if slots:
                    record_violations(current_index, slots)

        explored = len(states)
        complete = exploration.complete
        for slot, prop in enumerate(props):
            if verdicts[slot] is not None:
                continue
            if complete:
                verdict = (
                    Verdict.VIOLATED
                    if isinstance(prop, EventuallyFires)
                    else Verdict.PROVED
                )
                note = (
                    "transition never fires in the complete state space"
                    if verdict is Verdict.VIOLATED
                    else f"holds on all {explored} reachable markings"
                )
                verdicts[slot] = PropertyVerdict(
                    prop=prop,
                    verdict=verdict,
                    method="explicit",
                    states=explored,
                    note=note,
                )
            else:
                verdicts[slot] = PropertyVerdict(
                    prop=prop,
                    verdict=Verdict.UNKNOWN,
                    method="explicit",
                    states=explored,
                    note=(
                        f"undecided within the {self.max_states}-state "
                        f"budget ({explored} explored)"
                    ),
                )
        return exploration, tuple(v for v in verdicts if v is not None)


@dataclass(frozen=True)
class CheckReport:
    """Verdicts of one engine run over one net."""

    net_name: str
    verdicts: tuple[PropertyVerdict, ...]
    explored: int
    complete: bool

    def verdict_for(self, name: str) -> PropertyVerdict:
        """Look up one property's verdict by property name.

        Raises
        ------
        CheckError
            On an unknown property name (the message lists what
            exists).
        """
        for verdict in self.verdicts:
            if verdict.prop.name == name:
                return verdict
        known = [verdict.prop.name for verdict in self.verdicts]
        raise CheckError(f"no verdict for {name!r}; checked: {known}")

    @property
    def all_proved(self) -> bool:
        """Every property PROVED."""
        return all(v.verdict is Verdict.PROVED for v in self.verdicts)

    @property
    def any_violated(self) -> bool:
        """At least one property VIOLATED."""
        return any(v.verdict is Verdict.VIOLATED for v in self.verdicts)


def check_explicit(
    net: PetriNet,
    properties: Iterable[Property],
    max_states: int = 100_000,
) -> CheckReport:
    """One-call explicit check of ``properties`` against ``net``."""
    return ExplicitEngine(net, max_states=max_states).check(properties)
