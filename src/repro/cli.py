"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo classroom``
    Run a seeded classroom session and print the whiteboard, the event
    transcript, and the session report.
``demo lecture``
    Run the DOCPN lecture with and without the global clock; print the
    skew comparison.
``schedule``
    Compile the Figure 1 presentation, print its schedule as a Gantt
    chart and its synchronous sets.
``dot``
    Print the Figure 1 presentation net as Graphviz DOT (pipe into
    ``dot -Tpng`` to render).
``report``
    Run the seeded classroom and print only the session report.

All commands are deterministic; ``--seed`` varies the workload.
"""

from __future__ import annotations

import argparse
import sys

from .clock.virtual import VirtualClock
from .core.modes import FCMMode
from .net.simnet import Link, Network
from .petri.docpn import DOCPNSystem
from .petri.render import gantt, to_dot
from .session.dmps import DMPSClient, DMPSServer
from .session.report import summarize
from .temporal.schedule import compute_schedule
from .workload.presentations import figure1_presentation

__all__ = ["main"]


def _run_classroom(seed: int):
    """A small scripted classroom; returns (server, clients)."""
    import random

    rng = random.Random(seed)
    clock = VirtualClock()
    network = Network(clock, rng=random.Random(seed + 1))
    server = DMPSServer(clock, network)
    names = ["teacher", "alice", "bob", "carol"]
    clients = {}
    for name in names:
        host = f"host-{name}"
        clients[name] = DMPSClient(name, host, network)
        network.connect_both(
            "server", host, Link(base_latency=0.01 + rng.uniform(0, 0.02))
        )
        clients[name].join(is_chair=(name == "teacher"))
        clients[name].start_heartbeats()
        clients[name].start_clock_sync(interval=2.0)
    clock.run_until(1.0)
    server.set_mode(FCMMode.EQUAL_CONTROL, by="teacher")
    clock.run_until(1.2)
    speakers = ["teacher", "alice", "bob", "carol"]
    t = 1.5
    for speaker in speakers:
        clock.call_at(t, clients[speaker].request_floor)
        clock.call_at(t + 1.0, clients[speaker].post, f"{speaker}'s point")
        clock.call_at(t + 2.0, clients[speaker].release_floor)
        t += 2.5
    clock.run_until(t + 2.0)
    return server, list(clients.values())


def _cmd_demo_classroom(args: argparse.Namespace) -> int:
    server, clients = _run_classroom(args.seed)
    print("whiteboard:")
    for entry in server.board():
        print(f"  t={entry.accepted_at:6.2f}  {entry.author:>8}: {entry.content}")
    print("\ntranscript (floor events):")
    for event in server.control.log:
        print(f"  t={event.time:6.2f}  {event.kind.value:<12} "
              f"{event.member:<8} {event.detail}")
    print()
    print(summarize(server, clients).render())
    return 0


def _cmd_demo_lecture(args: argparse.Namespace) -> int:
    offsets = [0.3, -0.25, 0.1, 0.0]
    drifts = [0.01, -0.008, 0.002, 0.0]
    for use_gc in (False, True):
        clock = VirtualClock()
        system = DOCPNSystem(clock, use_global_clock=use_gc)
        for index, (offset, drift) in enumerate(zip(offsets, drifts)):
            system.add_site(
                f"site{index}",
                figure1_presentation(),
                clock_offset=offset,
                drift_rate=drift,
            )
        system.run(until=120.0)
        label = "ON " if use_gc else "OFF"
        print(f"global clock {label}: max skew "
              f"{system.max_skew() * 1000:7.1f} ms, holds {system.total_holds()}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    ocpn = figure1_presentation()
    schedule = compute_schedule(ocpn)
    print(gantt(schedule.intervals, width=args.width))
    print("\nsynchronous sets:")
    for sync_set in schedule.synchronous_sets():
        print(f"  t={sync_set.time:6.1f}  {', '.join(sync_set.media)}")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    ocpn = figure1_presentation()
    print(to_dot(ocpn.net, media_places=ocpn.media_of_place))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    server, clients = _run_classroom(args.seed)
    print(summarize(server, clients).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DMPS floor control & DOCPN reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run a scripted scenario")
    demo_sub = demo.add_subparsers(dest="scenario", required=True)
    demo_sub.add_parser("classroom").set_defaults(handler=_cmd_demo_classroom)
    demo_sub.add_parser("lecture").set_defaults(handler=_cmd_demo_lecture)

    schedule = subparsers.add_parser("schedule", help="print the Figure 1 schedule")
    schedule.add_argument("--width", type=int, default=48)
    schedule.set_defaults(handler=_cmd_schedule)

    dot = subparsers.add_parser("dot", help="print the Figure 1 net as DOT")
    dot.set_defaults(handler=_cmd_dot)

    report = subparsers.add_parser("report", help="session report only")
    report.set_defaults(handler=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
