"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo classroom``
    Run a seeded classroom session on the :mod:`repro.api` facade and
    print the whiteboard, the event transcript, and the session report.
``demo lecture``
    Run the DOCPN lecture with and without the global clock; print the
    skew comparison.
``demo scenario``
    Run a generated workload scenario (``lecture`` / ``seminar`` /
    ``panel`` / ``storm``) through the session facade and print the
    report.
``schedule``
    Compile the Figure 1 presentation, print its schedule as a Gantt
    chart and its synchronous sets.
``dot``
    Print the Figure 1 presentation net as Graphviz DOT (pipe into
    ``dot -Tpng`` to render).
``policies``
    List the registered floor policies (:mod:`repro.api.policies`).
``sweep``
    Run a parameter sweep (named via ``--spec``/``--smoke`` or inline
    via ``--axis``), print the comparison table, and persist the
    schema-versioned ``BENCH_*.json`` (:mod:`repro.experiments`).
    Network-dynamics grids ship as named specs (``loss_burst``,
    ``delay_ramp``, ``partition_heal``) and as cell parameters
    (``burst_loss``, ``ramp_to_latency``, ``partition_start``, ...)
    usable with ``--axis``/``--set``; the verification workload ships
    as ``floor_safety`` (the ``check`` cell runner).
``check``
    Verify property suites (:mod:`repro.check`): per-property verdicts
    — ``PROVED`` (inductive certificate or complete exploration),
    ``VIOLATED`` (with a counterexample firing trace), ``UNKNOWN``
    (budget ran out; never silently truncated) — optionally persisted
    as a schema-versioned ``CHECK_*.json``.  ``--smoke`` runs the
    Figure 1 net plus the floor-safety suite, the CI gate proving
    floor-token mutual exclusion for all four FCM modes.  Exit code 1
    means a property is VIOLATED — or UNKNOWN under ``--strict``
    (implied by ``--smoke``: the gate requires proof, not budget
    survival).
``replay``
    Re-run a saved transcript (:mod:`repro.events`): recompute its
    metrics and stream-check verdicts from the persisted events alone
    and compare byte-for-byte against what the live run recorded.
    Exit code 1 means the replay diverged — the transcript does not
    reproduce the recorded run.  Save transcripts with
    ``Session.save_transcript``, the sweep ``--transcripts DIR``
    option, or ``EventBus.save``.
``trace``
    Work with causal trace documents (:mod:`repro.trace`):
    ``record`` derives the deterministic ``TRACE_*.json`` from a saved
    transcript, ``top`` prints the self-time (or causal) summary of a
    trace, ``export`` converts one to Chrome trace-event JSON for
    Perfetto/about:tracing, and ``diff`` compares two causal traces
    span by span (exit 1 on divergence).
``serve``
    Host a live DMPS session over TCP (:mod:`repro.serve`): external
    clients handshake with newline-delimited JSON frames and their
    request/release/leave verbs run through the real arbitration
    stack, with watermark backpressure and ring transcripts.
    ``--smoke`` instead runs the deterministic lockstep soak (many
    in-process clients against one server) and persists the
    schema-versioned ``BENCH_serve.json`` — two runs with the same
    seed write byte-identical documents, which is what CI pins.
``report``
    Run the seeded classroom and print only the session report.

All commands are deterministic; ``--seed`` varies the workload.
"""

from __future__ import annotations

import argparse
import dataclasses
import random
import sys

from .api import Scenario, Session, at, policy_names
from .check import (
    Verdict,
    check_filename,
    run_suite,
    suite_names,
)
from .core.modes import FCMMode
from .errors import ReproError
from .events import replay_transcript
from .experiments import (
    SweepSpec,
    axes_from_mapping,
    bench_filename,
    named_spec,
    run_sweep,
    spec_names,
    write_csv,
    write_json,
)
from .fabric import FleetConfig, run_fleet, write_fleet_json
from .petri.docpn import DOCPNSystem
from .petri.render import gantt, to_dot
from .temporal.schedule import compute_schedule
from .workload.generator import WorkloadConfig, member_names
from .workload.generator import scenario as workload_scenario
from .workload.presentations import figure1_presentation

__all__ = ["main"]

#: Which initial floor policy each workload scenario assumes.
_SCENARIO_POLICY = {
    "lecture": "equal_control",
    "seminar": "equal_control",
    "panel": "free_access",
    "storm": "equal_control",
}


def _run_classroom(seed: int) -> Session:
    """A small scripted classroom on the facade; returns the session."""
    rng = random.Random(seed)
    builder = (
        Session.builder(chair="teacher")
        .seed(seed)
        .heartbeats(0.25)
        .clock_sync(2.0)
    )
    names = ["teacher", "alice", "bob", "carol"]
    for name in names:
        builder.participant(name, latency=0.01 + rng.uniform(0, 0.02))
    session = builder.build()
    script = Scenario(name="classroom").add(
        at(1.2, "set_mode", mode=FCMMode.EQUAL_CONTROL)
    )
    t = 1.5
    for speaker in names:
        script.add(
            at(t, "request_floor", speaker),
            at(t + 1.0, "post", speaker, content=f"{speaker}'s point"),
            at(t + 2.0, "release_floor", speaker),
        )
        t += 2.5
    script.run(session, until=t + 2.0)
    return session


def _cmd_demo_classroom(args: argparse.Namespace) -> int:
    session = _run_classroom(args.seed)
    print("whiteboard:")
    for entry in session.board():
        print(f"  t={entry.accepted_at:6.2f}  {entry.author:>8}: {entry.content}")
    print("\ntranscript (floor events):")
    for event in session.log:
        print(f"  t={event.time:6.2f}  {event.kind.value:<12} "
              f"{event.member:<8} {event.detail}")
    print()
    print(session.report().render())
    return 0


def _cmd_demo_lecture(args: argparse.Namespace) -> int:
    from .clock.virtual import VirtualClock

    offsets = [0.3, -0.25, 0.1, 0.0]
    drifts = [0.01, -0.008, 0.002, 0.0]
    for use_gc in (False, True):
        clock = VirtualClock()
        system = DOCPNSystem(clock, use_global_clock=use_gc)
        for index, (offset, drift) in enumerate(zip(offsets, drifts)):
            system.add_site(
                f"site{index}",
                figure1_presentation(),
                clock_offset=offset,
                drift_rate=drift,
            )
        system.run(until=120.0)
        label = "ON " if use_gc else "OFF"
        print(f"global clock {label}: max skew "
              f"{system.max_skew() * 1000:7.1f} ms, holds {system.total_holds()}")
    return 0


def _cmd_demo_scenario(args: argparse.Namespace) -> int:
    if args.members < 1:
        print("error: --members must be at least 1", file=sys.stderr)
        return 2
    config = WorkloadConfig(
        members=args.members, duration=args.duration, seed=args.seed
    )
    script = workload_scenario(args.name, config)
    if args.name == "lecture":
        # The lecture chair posts throughout: under equal control they
        # must hold the floor first (students then queue behind them).
        # t=0 sorts ahead of every workload event; it runs at warmup.
        script.add(at(0.0, "request_floor", "teacher"))
    session = (
        Session.builder(chair="teacher")
        .seed(args.seed)
        .participants(*member_names(config.members))
        .policy(_SCENARIO_POLICY[args.name])
        .build()
    )
    with session:
        script.run(session)
        print(f"scenario {args.name!r}: {len(script)} scripted steps, "
              f"{config.members} members")
        print(session.report().render())
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    ocpn = figure1_presentation()
    schedule = compute_schedule(ocpn)
    print(gantt(schedule.intervals, width=args.width))
    print("\nsynchronous sets:")
    for sync_set in schedule.synchronous_sets():
        print(f"  t={sync_set.time:6.1f}  {', '.join(sync_set.media)}")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    ocpn = figure1_presentation()
    print(to_dot(ocpn.net, media_places=ocpn.media_of_place))
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    for name in policy_names():
        print(name)
    return 0


def _parse_scalar(text: str):
    """CLI value -> typed scalar: int, float, bool, None, or str."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            continue
    return text


def _sweep_spec_from_args(args: argparse.Namespace) -> SweepSpec:
    """Resolve the requested spec: --smoke / --spec NAME / inline axes."""
    if args.smoke:
        spec = named_spec("smoke")
    elif args.spec is not None:
        spec = named_spec(args.spec)
    else:
        axes: dict[str, list] = {}
        for declaration in args.axis:
            name, __, values = declaration.partition("=")
            if not values:
                raise ValueError(
                    f"--axis needs name=v1,v2,..., got {declaration!r}"
                )
            if name in axes:
                raise ValueError(f"--axis {name!r} declared twice")
            axes[name] = [_parse_scalar(value) for value in values.split(",")]
        base = {}
        for assignment in args.set:
            key, separator, value = assignment.partition("=")
            if not separator:
                raise ValueError(f"--set needs key=value, got {assignment!r}")
            base[key] = _parse_scalar(value)
        spec = SweepSpec(
            name=args.name,
            axes=axes_from_mapping(axes),
            base=base,
            runner=args.runner,
        )
    if args.transcripts is not None:
        spec = dataclasses.replace(
            spec, base={**dict(spec.base), "transcript_dir": args.transcripts}
        )
    if args.traces is not None:
        # Capture parameter (never part of the seed): each session
        # cell's causal TRACE document rides along, byte-identical to
        # `repro trace record` on the captured transcript.
        spec = dataclasses.replace(
            spec, base={**dict(spec.base), "trace_dir": args.traces}
        )
    if args.ring is not None:
        # Execution parameter (never part of the seed): session cells
        # keep a bounded transcript ring while the streaming metrics
        # fold consumes every event — same BENCH bytes, O(ring) memory.
        spec = dataclasses.replace(
            spec, base={**dict(spec.base), "transcript_capacity": args.ring}
        )
    return spec.with_root_seed(args.seed)


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.list:
        for name in spec_names():
            print(name)
        return 0
    if not (args.smoke or args.spec is not None or args.axis):
        print("error: pick a sweep: --smoke, --spec NAME, or --axis "
              f"name=v1,v2 (named specs: {', '.join(spec_names())})",
              file=sys.stderr)
        return 2
    # Usage errors (bad flags, unknown names) exit 2; anything a cell
    # runner raises beyond ReproError is a real defect and propagates.
    try:
        spec = _sweep_spec_from_args(args)
        spec.validate()
    except (ValueError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        result = run_sweep(spec, workers=args.workers)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"sweep {spec.name!r}: {len(result)} cells, "
          f"runner {spec.runner!r}, root seed {spec.root_seed}, "
          f"workers {args.workers}")
    print()
    print(result.table(by=args.group_by))
    out = args.out if args.out is not None else bench_filename(spec.name)
    print(f"\nwrote {write_json(result, out)}")
    if args.csv is not None:
        print(f"wrote {write_csv(result, args.csv)}")
    return 0


#: The suites ``repro check --smoke`` runs (the CI gate).
_SMOKE_SUITES = ("figure1", "floor_safety")


def _cmd_check(args: argparse.Namespace) -> int:
    if args.list:
        for name in suite_names():
            print(name)
        return 0
    names = list(args.suite)
    if args.smoke:
        names = [name for name in _SMOKE_SUITES if name not in names] + names
    if not names:
        print("error: pick a suite: --smoke or --suite NAME "
              f"(named suites: {', '.join(suite_names())})", file=sys.stderr)
        return 2
    # The smoke gate *proves*: an UNKNOWN verdict (budget survival) must
    # fail CI just like a violation, or the guarantee silently erodes.
    strict = args.smoke or args.strict
    try:
        results = [
            run_suite(name, members=args.members, budget=args.budget)
            for name in names
        ]
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    violated = False
    for result in results:
        counts = result.counts()
        size = "n/a" if result.members is None else str(result.members)
        print(f"suite {result.suite.name!r}: {counts['proved']} proved, "
              f"{counts['violated']} violated, {counts['unknown']} unknown "
              f"(members {size}, budget {result.budget})")
        print()
        print(result.table())
        for __, report in result.reports:
            for verdict in report.verdicts:
                if verdict.verdict is Verdict.VIOLATED and verdict.counterexample:
                    trace = " -> ".join(verdict.counterexample.trace) or "(initial)"
                    print(f"  counterexample [{verdict.prop.name}]: {trace}")
        print()
        out = args.out if args.out is not None else check_filename(
            result.suite.name
        )
        if args.out is not None and len(results) > 1:
            # One explicit --out path with several suites would clobber;
            # suffix each file with its suite name instead.
            out = f"{args.out}.{result.suite.name}.json"
        print(f"wrote {result.write_json(out)}")
        violated = violated or result.any_violated
        if strict and counts["unknown"]:
            print(f"error: suite {result.suite.name!r} left "
                  f"{counts['unknown']} properties UNKNOWN "
                  f"(strict mode requires proof)", file=sys.stderr)
            violated = True
    return 1 if violated else 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    values = dict(
        sessions=args.sessions,
        shards=args.shards,
        members=args.members,
        policy=args.policy,
        scenario=args.scenario,
        duration=args.duration,
        tick=args.tick,
        ring_capacity=args.ring,
        request_rate=args.request_rate,
        engine=args.engine,
        seed=args.seed,
    )
    if args.smoke:
        # The CI lane: a small contended fleet that finishes in seconds
        # but still exercises sharding, batching, and ring eviction.
        values.update(
            sessions=500, shards=4, members=8, scenario="lecture",
            duration=20.0, request_rate=6.0,
        )
    try:
        config = FleetConfig(**values)
        config.validate()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = run_fleet(
        config,
        workers=args.workers,
        trace=args.trace is not None,
        profile=args.profile,
        progress=args.progress,
    )
    print(result.render())
    out = args.out if args.out is not None else bench_filename("fleet")
    print(f"\nwrote {write_fleet_json(result, out)}")
    if args.trace is not None:
        from .trace import save_trace

        # The metadata is config-derived only, so serial and sharded
        # runs write byte-identical causal documents; the wall-clock
        # profile joins the artifact only under the explicit opt-in
        # (the include_timing convention).
        meta = {
            "seed": config.seed,
            "sessions": config.sessions,
            "shards": config.shards,
            "policy": config.policy,
            "scenario": config.scenario,
            "engine": config.engine,
        }
        path = save_trace(
            args.trace,
            result.spans,
            meta=meta,
            profile=result.profile if args.profile else None,
        )
        print(f"wrote {path}")
    if args.profile:
        from .trace import top_report

        print()
        print(top_report(result.profile))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    # Every named transcript is checked even when an earlier one is
    # unreadable — one corrupt file must not mask a divergence in the
    # next.  Exit: 2 if any file failed to load, else 1 if any replay
    # diverged, else 0.
    exit_code = 0
    for index, path in enumerate(args.transcript):
        if index:
            print()
        try:
            report = replay_transcript(path)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            exit_code = 2
            continue
        print(report.render())
        if not report.ok:
            print(f"error: replay of {path} diverged from the recorded run",
                  file=sys.stderr)
            exit_code = max(exit_code, 1)
    return exit_code


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from pathlib import Path
    from types import SimpleNamespace

    from .events.transcript import load_transcript
    from .trace import CausalTracer, save_trace, trace_filename

    try:
        document = load_transcript(args.transcript)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    session_meta = document.meta.get("session") or {}
    # The seed binds span ids to the recorded run: transcripts saved by
    # Session.save_transcript carry it; hand-built ones fall back to
    # the CLI --seed.
    seed = int(session_meta.get("seed", args.seed))
    tracer = CausalTracer.from_events(document.events, seed=seed)
    monitor = document.meta.get("monitor") or {}
    rows = monitor.get("violations") or []
    if rows:
        tracer.add_violations(
            SimpleNamespace(time=row[0], invariant=row[1], detail=row[2])
            for row in rows
        )
    if args.out is not None:
        out = args.out
    else:
        stem = Path(args.transcript).stem
        stem = stem[len("TRANSCRIPT_"):] if stem.startswith("TRANSCRIPT_") else stem
        out = trace_filename(stem)
    path = save_trace(out, tracer.spans(), meta={"seed": seed})
    print(f"wrote {path} ({len(tracer.spans())} causal spans, seed {seed})")
    return 0


def _cmd_trace_top(args: argparse.Namespace) -> int:
    from .trace import causal_summary, load_trace, top_report

    try:
        document = load_trace(args.trace)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if document.profile:
        print(top_report(document.profile, limit=args.limit))
    else:
        print(causal_summary(document.spans))
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .trace import chrome_trace, load_trace

    try:
        document = load_trace(args.trace)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    exported = chrome_trace(document.spans)
    out = Path(args.out)
    out.write_text(json.dumps(exported) + "\n", "utf-8")
    print(f"wrote {out} ({len(exported['traceEvents'])} trace events; "
          f"load in Perfetto or about:tracing)")
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    from .trace import diff_traces, load_trace

    try:
        left = load_trace(args.a)
        right = load_trace(args.b)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    lines = diff_traces(left.spans, right.spans)
    if not lines:
        print(f"traces agree: {len(left.spans)} spans in both")
        return 0
    print(f"traces diverge ({len(lines)} differences shown):")
    for line in lines:
        print(line)
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    print(_run_classroom(args.seed).report().render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import ServeConfig, SessionServer, SoakSpec, run_soak_sync
    from .serve.persist import write_soak_json

    if args.smoke or args.clients is not None:
        # The soak path: a deterministic lockstep run, persisted as a
        # BENCH artifact.  --smoke is the CI preset; --clients scales.
        spec = SoakSpec(
            clients=args.clients if args.clients is not None else 64,
            rounds=args.rounds if args.rounds is not None else 12,
            disconnects=args.disconnects,
            policy=args.policy,
            tick=args.tick,
            ring_capacity=args.ring,
            seed=args.seed,
        )
        try:
            spec.validate()
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        profile = args.profile or args.trace is not None
        result = run_soak_sync(spec, profile=profile)
        print(result.render())
        out = args.out if args.out is not None else bench_filename("serve")
        path = write_soak_json(result, out, include_timing=args.timing)
        print(f"\nwrote {path}")
        if args.trace is not None:
            from .trace import CausalTracer, save_trace

            tracer = CausalTracer.from_events(
                result.serve.events, seed=spec.seed
            )
            meta = {
                "seed": spec.seed,
                "clients": spec.clients,
                "rounds": spec.rounds,
                "policy": spec.policy,
            }
            trace_path = save_trace(
                args.trace,
                tracer.spans(),
                meta=meta,
                profile=result.profile if args.profile else None,
            )
            print(f"wrote {trace_path}")
        if args.profile:
            from .trace import top_report

            print()
            print(top_report(result.profile))
        return 0

    # The live path: bind, serve until --duration (or Ctrl-C), report.
    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            policy=args.policy,
            mode="live",
            speed=args.speed,
            ring_capacity=args.ring,
            idle_timeout=args.idle_timeout,
        )
        config.validate()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    async def _serve_live() -> "object":
        server = SessionServer(config)
        await server.start()
        print(
            f"serving {config.policy} on {config.host}:{server.port} "
            f"(speed x{config.speed:g}"
            + (
                f", stopping after {args.duration:g}s"
                if args.duration is not None
                else ", Ctrl-C to stop"
            )
            + ")",
            flush=True,
        )
        try:
            if args.duration is not None:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()
        return server.result()

    try:
        result = asyncio.run(_serve_live())
    except KeyboardInterrupt:
        return 0
    metrics = result.to_metrics()
    print(
        f"served {int(metrics['connections'])} connection(s); "
        f"{int(metrics['events'])} floor events "
        f"({result.evicted_events} evicted from the ring)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DMPS floor control & DOCPN reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run a scripted scenario")
    demo_sub = demo.add_subparsers(dest="scenario", required=True)
    demo_sub.add_parser("classroom").set_defaults(handler=_cmd_demo_classroom)
    demo_sub.add_parser("lecture").set_defaults(handler=_cmd_demo_lecture)
    scenario = demo_sub.add_parser(
        "scenario", help="run a generated workload through the facade"
    )
    scenario.add_argument(
        "--name", choices=sorted(_SCENARIO_POLICY), default="seminar"
    )
    scenario.add_argument("--members", type=int, default=8)
    scenario.add_argument("--duration", type=float, default=60.0)
    scenario.set_defaults(handler=_cmd_demo_scenario)

    schedule = subparsers.add_parser("schedule", help="print the Figure 1 schedule")
    schedule.add_argument("--width", type=int, default=48)
    schedule.set_defaults(handler=_cmd_schedule)

    dot = subparsers.add_parser("dot", help="print the Figure 1 net as DOT")
    dot.set_defaults(handler=_cmd_dot)

    policies = subparsers.add_parser(
        "policies", help="list registered floor policies"
    )
    policies.set_defaults(handler=_cmd_policies)

    sweep = subparsers.add_parser(
        "sweep", help="run a parameter sweep and persist BENCH json"
    )
    sweep.add_argument(
        "--smoke", action="store_true",
        help="run the tiny CI smoke grid (alias for --spec smoke)",
    )
    sweep.add_argument("--spec", help="a named spec (see --list)")
    sweep.add_argument("--list", action="store_true",
                       help="list named specs and exit")
    sweep.add_argument(
        "--axis", action="append", default=[], metavar="NAME=V1,V2",
        help="inline axis (repeatable); crossed into the grid",
    )
    sweep.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        help="inline base parameter shared by every cell (repeatable)",
    )
    sweep.add_argument("--name", default="inline",
                       help="name of an inline sweep (default: inline)")
    sweep.add_argument("--runner", default="session",
                       help="cell runner of an inline sweep")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = in-process)")
    sweep.add_argument("--group-by", metavar="AXIS",
                       help="aggregate the table over one axis")
    sweep.add_argument("--out", help="BENCH json path "
                                     "(default: BENCH_<spec>.json)")
    sweep.add_argument("--csv", help="also write a CSV flattening here")
    sweep.add_argument(
        "--transcripts", metavar="DIR",
        help="save each session cell's replayable transcript JSONL "
             "(TRANSCRIPT_<cell>.jsonl) into this directory",
    )
    sweep.add_argument(
        "--traces", metavar="DIR",
        help="save each session cell's deterministic causal trace "
             "(TRACE_<cell>.json) into this directory",
    )
    sweep.add_argument(
        "--ring", type=int, metavar="N",
        help="bound each session cell's transcript to an N-event ring; "
             "metrics stream through the shared fold, so the persisted "
             "BENCH bytes are identical and peak memory drops to O(N)",
    )
    sweep.set_defaults(handler=_cmd_sweep)

    fleet = subparsers.add_parser(
        "fleet", help="run a sharded multi-session fleet and persist "
                      "BENCH_fleet json (repro.fabric)"
    )
    fleet.add_argument("--sessions", type=int, default=100,
                       help="how many concurrent DMPS sessions")
    fleet.add_argument("--shards", type=int, default=1,
                       help="shared-nothing shards the fleet splits into")
    fleet.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = serial lockstep)")
    fleet.add_argument("--members", type=int, default=4,
                       help="participants per session")
    fleet.add_argument("--policy", default="equal_control",
                       help="floor policy every session runs")
    fleet.add_argument("--scenario", default="seminar",
                       choices=("lecture", "seminar", "panel", "storm"),
                       help="workload scenario (seeded per session)")
    fleet.add_argument("--duration", type=float, default=30.0,
                       help="simulated span (virtual seconds)")
    fleet.add_argument("--tick", type=float, default=1.0,
                       help="lockstep tick (arbitration batch interval)")
    fleet.add_argument("--ring", type=int, default=256,
                       help="per-session transcript ring capacity")
    fleet.add_argument("--request-rate", type=float, default=0.5,
                       help="requests per member per minute (lecture)")
    fleet.add_argument("--engine", default="batch",
                       choices=("batch", "compiled", "facade"),
                       help="per-session machinery")
    fleet.add_argument(
        "--smoke", action="store_true",
        help="run the CI smoke fleet (500 contended lecture sessions, "
             "4 shards, 20 s simulated)",
    )
    fleet.add_argument("--out", help="BENCH json path "
                                     "(default: BENCH_fleet.json)")
    fleet.add_argument(
        "--trace", metavar="PATH",
        help="also write the fleet's deterministic causal trace "
             "(byte-identical serial vs. sharded) to this TRACE json",
    )
    fleet.add_argument(
        "--profile", action="store_true",
        help="run the wall-clock timing plane (per-layer self time; "
             "printed as a top report, and embedded in --trace output)",
    )
    fleet.add_argument(
        "--progress", action="store_true",
        help="stream a heartbeat to stderr (per tick serially, per "
             "shard completion when sharded)",
    )
    fleet.set_defaults(handler=_cmd_fleet)

    replay = subparsers.add_parser(
        "replay", help="re-run saved transcripts and verify they "
                       "reproduce the recorded metrics and verdicts"
    )
    replay.add_argument("transcript", nargs="+",
                        help="one or more TRANSCRIPT_*.jsonl files")
    replay.set_defaults(handler=_cmd_replay)

    check = subparsers.add_parser(
        "check", help="verify property suites and persist CHECK json"
    )
    check.add_argument(
        "--smoke", action="store_true",
        help="run the CI gate: the Figure 1 net + the floor-safety suite",
    )
    check.add_argument(
        "--suite", action="append", default=[], metavar="NAME",
        help="a named property suite (repeatable; see --list)",
    )
    check.add_argument("--list", action="store_true",
                       help="list named suites and exit")
    check.add_argument("--members", type=int, default=3,
                       help="model size of member-parameterized suites")
    check.add_argument("--budget", type=int, default=50_000,
                       help="explicit-engine state budget (fallback only)")
    check.add_argument(
        "--strict", action="store_true",
        help="also fail (exit 1) on UNKNOWN verdicts; implied by --smoke",
    )
    check.add_argument("--out", help="verdict json path "
                                     "(default: CHECK_<suite>.json)")
    check.set_defaults(handler=_cmd_check)

    trace = subparsers.add_parser(
        "trace", help="record, inspect, export and diff trace documents "
                      "(repro.trace)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    record = trace_sub.add_parser(
        "record", help="derive the deterministic causal TRACE json "
                       "from a saved transcript"
    )
    record.add_argument("transcript", help="a TRANSCRIPT_*.jsonl file")
    record.add_argument("-o", "--out",
                        help="TRACE json path (default: TRACE_<name>.json)")
    record.set_defaults(handler=_cmd_trace_record)
    top = trace_sub.add_parser(
        "top", help="self-time table of a profiled trace (or the "
                    "causal summary of a causal-only one)"
    )
    top.add_argument("trace", help="a TRACE_*.json file")
    top.add_argument("--limit", type=int, default=20,
                     help="rows in the self-time table")
    top.set_defaults(handler=_cmd_trace_top)
    export = trace_sub.add_parser(
        "export", help="convert a trace to Chrome trace-event JSON "
                       "(loadable in Perfetto / about:tracing)"
    )
    export.add_argument("trace", help="a TRACE_*.json file")
    export.add_argument("-o", "--out", required=True,
                        help="Chrome trace-event json path")
    export.set_defaults(handler=_cmd_trace_export)
    diff = trace_sub.add_parser(
        "diff", help="compare two causal traces span by span "
                     "(exit 1 on divergence)"
    )
    diff.add_argument("a", help="first TRACE_*.json")
    diff.add_argument("b", help="second TRACE_*.json")
    diff.set_defaults(handler=_cmd_trace_diff)

    serve = subparsers.add_parser(
        "serve",
        help="host a live session over TCP, or run the lockstep soak",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="live mode: bind address")
    serve.add_argument("--port", type=int, default=0,
                       help="live mode: TCP port (0 picks a free one)")
    serve.add_argument("--policy", default="equal_control",
                       help="FCM mode policy the session runs")
    serve.add_argument("--speed", type=float, default=1.0,
                       help="live mode: virtual seconds per wall second")
    serve.add_argument("--ring", type=int, default=4096,
                       help="transcript ring capacity")
    serve.add_argument("--idle-timeout", type=float, default=None,
                       help="live mode: evict members silent this long")
    serve.add_argument("--duration", type=float, default=None,
                       help="live mode: stop after this many wall seconds")
    serve.add_argument(
        "--smoke", action="store_true",
        help="run the deterministic lockstep soak preset "
             "(64 clients x 12 rounds) and write BENCH_serve.json",
    )
    serve.add_argument("--clients", type=int, default=None,
                       help="soak: concurrent client connections")
    serve.add_argument("--rounds", type=int, default=None,
                       help="soak: lockstep rounds to run")
    serve.add_argument("--disconnects", type=int, default=4,
                       help="soak: scripted mid-hold hard disconnects")
    serve.add_argument("--tick", type=float, default=1.0,
                       help="soak: virtual seconds per lockstep round")
    serve.add_argument("--out", help="soak: BENCH json path "
                       "(default BENCH_serve.json)")
    serve.add_argument(
        "--timing", action="store_true",
        help="soak: include wall-clock metrics in the artifact "
             "(off by default so identical seeds write identical bytes)",
    )
    serve.add_argument("--trace", metavar="PATH", default=None,
                       help="soak: also write a TRACE_*.json here")
    serve.add_argument(
        "--profile", action="store_true",
        help="soak: profile the serve hot path (serve.dispatch / "
             "serve.flush / serve.evict) and print the top table",
    )
    serve.set_defaults(handler=_cmd_serve)

    report = subparsers.add_parser("report", help="session report only")
    report.set_defaults(handler=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
