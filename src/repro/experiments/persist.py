"""Persisted benchmark results: schema-versioned ``BENCH_*.json`` + CSV.

One sweep serializes to one JSON document —

.. code-block:: json

    {
      "schema": "repro-dmps/bench",
      "schema_version": 1,
      "spec": {"name": "...", "runner": "...", "root_seed": 0,
               "base": {"...": "..."}, "axes": {"policy": ["..."]}},
      "cells": [
        {"id": "policy=fifo", "seed": 123, "params": {"...": "..."},
         "metrics": {"grant_p95": 0.0}}
      ]
    }

— with sorted keys and cells in grid enumeration order, so the bytes
depend only on the spec and root seed: re-running the same sweep (at
any worker count) reproduces the file exactly, and CI can diff perf
trajectories across commits.  The CSV flattens the same cells, one row
each, for spreadsheet work.
"""

from __future__ import annotations

import csv
import io
import json
import re
from pathlib import Path
from typing import Any

from ..errors import ReproError
from .runner import SweepResult

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "bench_filename",
    "csv_text",
    "dumps",
    "load_document",
    "to_document",
    "write_csv",
    "write_json",
]

#: Document family tag every bench file carries.
SCHEMA = "repro-dmps/bench"
#: Bump on any incompatible change to the document layout.
SCHEMA_VERSION = 1


def to_document(result: SweepResult) -> dict[str, Any]:
    """The sweep as a plain JSON-ready document (see module docs)."""
    spec = result.spec
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "spec": {
            "name": spec.name,
            "runner": spec.runner,
            "root_seed": spec.root_seed,
            "base": dict(spec.base),
            "axes": {axis.name: list(axis.values) for axis in spec.axes},
        },
        "cells": [
            {
                "id": cell_result.cell.cell_id,
                "seed": cell_result.cell.seed,
                "params": dict(cell_result.cell.params),
                "metrics": dict(cell_result.metrics),
            }
            for cell_result in result.results
        ],
    }


def dumps(result: SweepResult) -> str:
    """Serialize to the canonical byte-stable JSON text."""
    return json.dumps(to_document(result), indent=2, sort_keys=True) + "\n"


def write_json(result: SweepResult, path: str | Path) -> Path:
    """Write the canonical JSON document; returns the path written."""
    target = Path(path)
    target.write_text(dumps(result), encoding="utf-8")
    return target


def csv_text(result: SweepResult) -> str:
    """The sweep as CSV: one row per cell, sorted columns."""
    param_names: set[str] = set()
    for cell_result in result.results:
        param_names.update(cell_result.cell.params)
    params = sorted(param_names)
    metrics = result.metric_names()
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["cell", "seed"] + params + metrics)
    for cell_result in result.results:
        row: list[Any] = [cell_result.cell.cell_id, cell_result.cell.seed]
        row += [cell_result.cell.params.get(name, "") for name in params]
        row += [cell_result.metrics.get(name, "") for name in metrics]
        writer.writerow(row)
    return buffer.getvalue()


def write_csv(result: SweepResult, path: str | Path) -> Path:
    """Write the CSV flattening; returns the path written."""
    target = Path(path)
    target.write_text(csv_text(result), encoding="utf-8")
    return target


def load_document(path: str | Path) -> dict[str, Any]:
    """Read a persisted bench document back, checking its schema.

    Raises
    ------
    ReproError
        When the file is not a bench document or its schema version is
        newer than this code understands.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ReproError(f"{path}: not valid JSON ({error})") from None
    if not isinstance(document, dict) or document.get("schema") != SCHEMA:
        raise ReproError(f"{path}: not a {SCHEMA!r} document")
    version = document.get("schema_version")
    if not isinstance(version, int) or version > SCHEMA_VERSION:
        raise ReproError(
            f"{path}: schema version {version!r} is newer than the "
            f"supported {SCHEMA_VERSION}"
        )
    return document


def bench_filename(spec_name: str) -> str:
    """Canonical ``BENCH_<name>.json`` filename for a sweep name."""
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", spec_name).strip("_") or "sweep"
    return f"BENCH_{safe}.json"
