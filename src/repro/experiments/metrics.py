"""Per-cell metrics — compatibility facade over :mod:`repro.metrics`.

The paper's stated future work is "focus[ing] on the performance of
the system"; these helpers turn one run's raw transcript into the
numbers the comparison tables print.  The implementations moved into
the shared streaming kernel (:mod:`repro.metrics`): the scalar
statistics re-export from :mod:`repro.metrics.stats`, and the two
transcript scanners are now one-shot folds of a
:class:`~repro.metrics.fold.MetricsFold` — same signatures, same
bytes, one pairing algorithm for every surface.

* :func:`grant_latencies` pairs ``REQUEST`` events with the ``GRANT``
  or ``TOKEN_PASS`` that served them, yielding one floor-grant latency
  per served request (queue wait included);
* :func:`served_counts` tallies how often each member was served,
  feeding :func:`jain_fairness`;
* :func:`percentile` is the deterministic nearest-rank percentile the
  persisted ``BENCH_*.json`` records as ``grant_p50`` / ``grant_p95``.

Every function is pure and order-deterministic, which is what lets
parallel and serial sweep runs agree byte-for-byte.
"""

from __future__ import annotations

from typing import Iterable

from ..core.events import FloorEvent
from ..metrics.fold import MetricsFold
from ..metrics.stats import jain_fairness, latency_summary, percentile

__all__ = [
    "grant_latencies",
    "jain_fairness",
    "latency_summary",
    "percentile",
    "served_counts",
]


def grant_latencies(log: Iterable[FloorEvent]) -> list[float]:
    """Request-to-service latency for every served floor request.

    A member's oldest outstanding ``REQUEST`` is served either by an
    immediate ``GRANT`` or by a later ``TOKEN_PASS`` naming them as the
    successor (the event's typed payload).  Unserved requests (still
    queued, denied, lost on the wire) contribute nothing.  ``log`` is
    any event iterable — a live bus or a loaded transcript.
    """
    fold = MetricsFold()
    for event in log:
        fold.add(event)
    return fold.latencies


def served_counts(
    log: Iterable[FloorEvent], members: Iterable[str]
) -> dict[str, int]:
    """How many times each member was served the floor.

    Counts ``GRANT`` events plus ``TOKEN_PASS`` hand-offs to the
    member; ``members`` pre-seeds the tally so silent participants
    count as zero in the fairness index.
    """
    fold = MetricsFold(members=members)
    for event in log:
        fold.add(event)
    return dict(fold.counts)
