"""Per-cell metrics: grant latency percentiles, loss, and fairness.

The paper's stated future work is "focus[ing] on the performance of
the system"; this module turns one run's raw transcript into the
numbers the comparison tables print:

* :func:`grant_latencies` pairs ``REQUEST`` events with the ``GRANT``
  or ``TOKEN_PASS`` that served them, yielding one floor-grant latency
  per served request (queue wait included);
* :func:`served_counts` tallies how often each member was served,
  feeding :func:`jain_fairness`;
* :func:`percentile` is the deterministic nearest-rank percentile the
  persisted ``BENCH_*.json`` records as ``grant_p50`` / ``grant_p95``.

Every function is pure and order-deterministic, which is what lets
parallel and serial sweep runs agree byte-for-byte.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable, Mapping

from ..core.events import EventKind, FloorEvent

__all__ = [
    "grant_latencies",
    "jain_fairness",
    "latency_summary",
    "percentile",
    "served_counts",
]


def percentile(values: Iterable[float], pct: float) -> float:
    """Nearest-rank percentile of ``values`` (0.0 when empty).

    Nearest-rank always returns an observed sample, so the persisted
    numbers are exact floats that reproduce bit-for-bit.
    """
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {pct!r}")
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def jain_fairness(shares: Iterable[float]) -> float:
    """Jain's fairness index over per-member shares.

    1.0 means perfectly even service, ``1/n`` means one member took
    everything.  Empty or all-zero shares score 1.0 (nobody was
    treated unfairly when nobody was served).
    """
    values = list(shares)
    total = sum(values)
    if not values or total == 0:
        return 1.0
    square_sum = sum(value * value for value in values)
    return (total * total) / (len(values) * square_sum)


def _token_recipient(event: FloorEvent) -> str | None:
    """Who a ``TOKEN_PASS`` handed the floor to (typed payload)."""
    payload = event.payload()
    return payload.to_member if payload is not None else None


def grant_latencies(log: Iterable[FloorEvent]) -> list[float]:
    """Request-to-service latency for every served floor request.

    A member's oldest outstanding ``REQUEST`` is served either by an
    immediate ``GRANT`` or by a later ``TOKEN_PASS`` naming them as the
    successor (the event's typed payload).  Unserved requests (still
    queued, denied, lost on the wire) contribute nothing.  ``log`` is
    any event iterable — a live bus or a loaded transcript.
    """
    pending: dict[str, deque[float]] = {}
    latencies: list[float] = []

    def serve(member: str, now: float) -> None:
        queue = pending.get(member)
        if queue:
            latencies.append(now - queue.popleft())

    for event in log:
        if event.kind is EventKind.REQUEST:
            pending.setdefault(event.member, deque()).append(event.time)
        elif event.kind is EventKind.GRANT:
            serve(event.member, event.time)
        elif event.kind is EventKind.TOKEN_PASS:
            recipient = _token_recipient(event)
            if recipient:
                serve(recipient, event.time)
    return latencies


def served_counts(
    log: Iterable[FloorEvent], members: Iterable[str]
) -> dict[str, int]:
    """How many times each member was served the floor.

    Counts ``GRANT`` events plus ``TOKEN_PASS`` hand-offs to the
    member; ``members`` pre-seeds the tally so silent participants
    count as zero in the fairness index.
    """
    counts: dict[str, int] = {member: 0 for member in members}
    for event in log:
        if event.kind is EventKind.GRANT:
            counts[event.member] = counts.get(event.member, 0) + 1
        elif event.kind is EventKind.TOKEN_PASS:
            recipient = _token_recipient(event)
            if recipient:
                counts[recipient] = counts.get(recipient, 0) + 1
    return counts


def latency_summary(latencies: Iterable[float]) -> Mapping[str, float]:
    """The latency metrics recorded per cell: mean, p50, and p95."""
    values = list(latencies)
    mean = sum(values) / len(values) if values else 0.0
    return {
        "grant_mean": mean,
        "grant_p50": percentile(values, 50.0),
        "grant_p95": percentile(values, 95.0),
    }
