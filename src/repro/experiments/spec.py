"""Declarative parameter sweeps: axes crossed into a grid of cells.

The paper's claims are comparative — floor modes against baselines
under varying delay, loss, and group size — so one run is never
enough.  A :class:`SweepSpec` names the experiment once:

* an :class:`Axis` is one swept parameter and its values;
* the cross product of all axes, merged over ``base`` defaults, yields
  one :class:`Cell` per combination;
* every cell gets a seed derived deterministically from the spec's
  ``root_seed`` and the cell's *sorted* parameters, so seeds survive
  axis reordering and grid growth (adding an axis value never reseeds
  the existing cells).

Cells carry plain scalars only; they pickle cleanly across the worker
processes of :func:`repro.experiments.runner.run_sweep`.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..errors import ReproError

__all__ = [
    "Axis",
    "CAPTURE_PARAMS",
    "Cell",
    "EXECUTION_PARAMS",
    "SweepSpec",
    "axes_from_mapping",
    "derive_seed",
]

#: Parameter values a sweep may carry (JSON- and pickle-safe).
_SCALARS = (bool, int, float, str, type(None))

#: Capture/output parameters: they direct *where artifacts go*, never
#: what a cell simulates, so :func:`derive_seed` excludes them — a
#: sweep run with transcript capture on reproduces the exact metrics
#: of the same sweep run without it.
CAPTURE_PARAMS = frozenset({"transcript_dir", "trace_dir"})

#: Execution parameters: they select *how* a cell is computed (which
#: engine runs the same simulation, how big a transcript ring the bus
#: keeps while the streaming metrics fold consumes events), never what
#: it simulates, so :func:`derive_seed` excludes them too — an
#: ``engine`` axis compares the engines on byte-identical workloads
#: instead of reseeding them.
EXECUTION_PARAMS = frozenset({"engine", "transcript_capacity"})

#: Everything :func:`derive_seed` ignores.
_NON_IDENTITY_PARAMS = CAPTURE_PARAMS | EXECUTION_PARAMS


def _check_scalar(context: str, value: Any) -> None:
    if not isinstance(value, _SCALARS):
        raise ReproError(
            f"{context}: sweep parameters must be scalars "
            f"(bool/int/float/str/None), got {value!r}"
        )


def derive_seed(root_seed: int, runner: str, params: Mapping[str, Any]) -> int:
    """Deterministic 63-bit seed for one cell.

    The digest covers the root seed, the runner name, and the cell's
    parameters *sorted by name* — reordering axes or re-enumerating the
    grid never changes a cell's seed, only its position.  Capture
    parameters (:data:`CAPTURE_PARAMS`) and execution parameters
    (:data:`EXECUTION_PARAMS`) are excluded: artifact destinations and
    engine selection must not reseed the simulation they record/run.
    """
    canonical = ",".join(
        f"{name}={params[name]!r}"
        for name in sorted(params)
        if name not in _NON_IDENTITY_PARAMS
    )
    digest = hashlib.sha256(
        f"{root_seed}|{runner}|{canonical}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class Axis:
    """One swept parameter: a name and the values it takes."""

    name: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not self.name:
            raise ReproError("an axis needs a non-empty name")
        if not self.values:
            raise ReproError(f"axis {self.name!r} has no values")
        seen: list[Any] = []
        for value in self.values:
            _check_scalar(f"axis {self.name!r}", value)
            if any(value == prior and type(value) is type(prior) for prior in seen):
                raise ReproError(
                    f"axis {self.name!r} repeats the value {value!r}"
                )
            seen.append(value)


@dataclass(frozen=True)
class Cell:
    """One point of the grid: merged parameters plus a derived seed.

    ``index`` is the cell's position in enumeration order (display
    only); ``cell_id`` is the canonical, sorted axis-coordinate string
    used to key results deterministically.
    """

    index: int
    cell_id: str
    params: Mapping[str, Any]
    seed: int


@dataclass(frozen=True)
class SweepSpec:
    """A named grid of experiment configurations.

    ``axes`` are crossed into cells; ``base`` supplies the parameters
    shared by every cell; ``runner`` names the registered cell runner
    (:mod:`repro.experiments.runner`) that executes each cell;
    ``root_seed`` anchors every derived cell seed.
    """

    name: str
    axes: tuple[Axis, ...] = ()
    base: Mapping[str, Any] = field(default_factory=dict)
    runner: str = "session"
    root_seed: int = 0

    def validate(self) -> None:
        """Reject inconsistent grids before any cell runs."""
        if not self.name:
            raise ReproError("a sweep spec needs a non-empty name")
        names = [axis.name for axis in self.axes]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ReproError(f"duplicate sweep axes: {sorted(duplicates)!r}")
        overlap = set(names) & set(self.base)
        if overlap:
            raise ReproError(
                f"axes shadow base parameters: {sorted(overlap)!r}"
            )
        for key, value in self.base.items():
            _check_scalar(f"base parameter {key!r}", value)

    @property
    def axis_names(self) -> list[str]:
        """The swept parameter names, in declaration order."""
        return [axis.name for axis in self.axes]

    def __len__(self) -> int:
        size = 1
        for axis in self.axes:
            size *= len(axis.values)
        return size

    def cells(self) -> list[Cell]:
        """Enumerate the grid: one :class:`Cell` per axis combination.

        With no axes the grid is the single all-defaults cell.  Cell
        ids and seeds depend only on the parameter *values*, never on
        axis order.
        """
        self.validate()
        cells: list[Cell] = []
        value_lists = [axis.values for axis in self.axes]
        for index, combo in enumerate(itertools.product(*value_lists)):
            coords = dict(zip(self.axis_names, combo))
            params = {**dict(self.base), **coords}
            cell_id = (
                ",".join(f"{name}={coords[name]}" for name in sorted(coords))
                or "default"
            )
            cells.append(
                Cell(
                    index=index,
                    cell_id=cell_id,
                    params=params,
                    seed=derive_seed(self.root_seed, self.runner, params),
                )
            )
        return cells

    def with_root_seed(self, root_seed: int) -> "SweepSpec":
        """A copy of this spec anchored at a different root seed."""
        return SweepSpec(
            name=self.name,
            axes=self.axes,
            base=dict(self.base),
            runner=self.runner,
            root_seed=root_seed,
        )


def axes_from_mapping(values_by_name: Mapping[str, Iterable[Any]]) -> tuple[Axis, ...]:
    """Build an axis tuple from ``{name: values}`` (CLI / JSON input)."""
    return tuple(
        Axis(name, tuple(values)) for name, values in values_by_name.items()
    )
