"""Parameter sweeps over sessions: grids, workers, persisted benches.

The sweep engine is the experiment layer on top of the
:mod:`repro.api` facade::

    from repro.experiments import Axis, SweepSpec, run_sweep, write_json

    spec = SweepSpec(
        name="modes_vs_baselines",
        axes=(Axis("policy", ("equal_control", "fifo", "free_for_all")),),
        base={"participants": 8, "scenario": "storm", "duration": 10.0},
        root_seed=7,
    )
    result = run_sweep(spec, workers=4)
    print(result.table(by="policy"))
    write_json(result, "BENCH_modes_vs_baselines.json")

Four layers:

* :mod:`repro.experiments.spec` — declarative grids
  (:class:`Axis` × :class:`Axis` → :class:`Cell`) with per-cell seeds
  derived from one root seed;
* :mod:`repro.experiments.runner` — cell runners (full sessions, bare
  policies, or anything registered) executed serially or across worker
  processes with identical results;
* :mod:`repro.experiments.metrics` — grant-latency percentiles, Jain
  fairness, loss aggregation;
* :mod:`repro.experiments.persist` — byte-stable, schema-versioned
  ``BENCH_*.json`` and CSV output.

:mod:`repro.experiments.specs` names the standard grids the CLI
(``repro sweep``) and the CI benchmark lane run.
"""

from .metrics import (
    grant_latencies,
    jain_fairness,
    latency_summary,
    percentile,
    served_counts,
)
from .persist import (
    SCHEMA,
    SCHEMA_VERSION,
    bench_filename,
    csv_text,
    dumps,
    load_document,
    to_document,
    write_csv,
    write_json,
)
from .runner import (
    CellResult,
    CellRunner,
    SweepResult,
    register_runner,
    resolve_runner,
    run_check_cell,
    run_policy_cell,
    run_session_cell,
    run_sweep,
    runner_names,
    unregister_runner,
)
from .spec import Axis, Cell, SweepSpec, axes_from_mapping, derive_seed
from .specs import named_spec, register_spec, spec_names, unregister_spec

__all__ = [
    "Axis",
    "Cell",
    "CellResult",
    "CellRunner",
    "SCHEMA",
    "SCHEMA_VERSION",
    "SweepResult",
    "SweepSpec",
    "axes_from_mapping",
    "bench_filename",
    "csv_text",
    "derive_seed",
    "dumps",
    "grant_latencies",
    "jain_fairness",
    "latency_summary",
    "load_document",
    "named_spec",
    "percentile",
    "register_runner",
    "register_spec",
    "resolve_runner",
    "run_check_cell",
    "run_policy_cell",
    "run_session_cell",
    "run_sweep",
    "runner_names",
    "served_counts",
    "spec_names",
    "to_document",
    "unregister_runner",
    "unregister_spec",
    "write_csv",
    "write_json",
]
