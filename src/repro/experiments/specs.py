"""Named sweep specs: the grids the CLI and CI run by name.

``repro sweep --spec <name>`` resolves here.  The registry ships the
paper's headline comparisons —

* ``smoke`` — three policies, four members, a storm burst; the ≤30 s
  grid the CI ``bench-smoke`` lane runs on every PR;
* ``floor_modes`` — the two session-wide FCM modes under a request
  storm (E3's sweepable half; the subgroup modes need invitations and
  live in ``benchmarks/bench_e3_floor_modes.py``);
* ``baselines`` — equal control against the fifo / free-for-all
  ablations over a seminar workload;
* ``delay_grid`` — latency × loss over equal control, the "bounded
  delay" premise of Section 3 made measurable;
* ``group_size`` — participants axis, arbitration under growing
  classes;
* ``loss_burst`` — a Gilbert–Elliott bursty-loss axis
  (:mod:`repro.net.dynamics`): what independent-loss grids miss about
  correlated outages;
* ``delay_ramp`` — mid-session latency ramps that violate the paper's
  bounded-delay premise while the session runs;
* ``partition_heal`` — the session-wide modes under a mid-session
  partition-and-heal window (do grants resume after the heal?);
* ``floor_safety`` — the verification workload (:mod:`repro.check`):
  every FCM mode's floor-control net at two model sizes, persisting
  the property-verdict census and explored-state counts — the grid
  bench E13 and the CI ``check-smoke`` lane read;
* ``fleet_scale`` — whole fleets as cells (:mod:`repro.fabric`):
  a fleet-size axis over a contended lecture workload on four
  shared-nothing shards.  (Shard-count invariance is pinned at the
  ``run_fleet`` level — a ``shards`` *axis* would reseed each cell,
  since cell seeds derive from all cell parameters.)

Specs are values: grab one, ``with_root_seed`` it, cross more axes in
a copy.  Registering your own name makes it reachable from the CLI.
"""

from __future__ import annotations

from ..errors import ReproError
from .spec import Axis, SweepSpec

__all__ = ["named_spec", "register_spec", "spec_names", "unregister_spec"]

_SPECS: dict[str, SweepSpec] = {}


def register_spec(spec: SweepSpec) -> SweepSpec:
    """Add a spec to the named registry under ``spec.name``.

    Re-registering an *equal* spec is a no-op (specs are frozen
    dataclasses, so equality is structural), keeping module re-imports
    in spawned workers safe; only a conflicting registration raises.

    Raises
    ------
    ReproError
        If the name is already taken by a different spec.
    """
    spec.validate()
    existing = _SPECS.get(spec.name)
    if existing is not None and existing != spec:
        raise ReproError(f"sweep spec {spec.name!r} is already registered")
    _SPECS[spec.name] = spec
    return spec


def unregister_spec(name: str) -> None:
    """Remove a named spec (no-op when unknown)."""
    _SPECS.pop(name, None)


def named_spec(name: str) -> SweepSpec:
    """Look up a registered spec by name.

    Raises
    ------
    ReproError
        On an unknown name (the message lists what exists).
    """
    if name not in _SPECS:
        raise ReproError(
            f"unknown sweep spec {name!r}; registered: {spec_names()}"
        )
    return _SPECS[name]


def spec_names() -> list[str]:
    """All registered spec names, sorted."""
    return sorted(_SPECS)


register_spec(
    SweepSpec(
        name="smoke",
        axes=(Axis("policy", ("equal_control", "fifo", "free_for_all")),),
        base={"participants": 4, "scenario": "storm", "duration": 6.0,
              "latency": 0.01},
    )
)

register_spec(
    SweepSpec(
        name="floor_modes",
        axes=(Axis("policy", ("free_access", "equal_control")),),
        base={"participants": 16, "scenario": "storm", "duration": 8.0},
    )
)

register_spec(
    SweepSpec(
        name="baselines",
        axes=(Axis("policy", ("equal_control", "fifo", "free_for_all")),),
        base={"participants": 8, "scenario": "lecture", "duration": 40.0,
              "request_rate": 8.0},
    )
)

register_spec(
    SweepSpec(
        name="delay_grid",
        axes=(
            Axis("latency", (0.005, 0.02, 0.08)),
            Axis("loss", (0.0, 0.05)),
        ),
        base={"participants": 8, "scenario": "lecture", "duration": 30.0,
              "policy": "equal_control", "request_rate": 8.0},
    )
)

register_spec(
    SweepSpec(
        name="group_size",
        axes=(Axis("participants", (4, 8, 16, 32)),),
        base={"scenario": "storm", "duration": 10.0,
              "policy": "equal_control"},
    )
)

register_spec(
    SweepSpec(
        name="loss_burst",
        axes=(Axis("burst_loss", (0.0, 0.4, 0.9)),),
        base={"participants": 6, "scenario": "seminar", "duration": 20.0,
              "policy": "equal_control", "latency": 0.02,
              "burst_mean_good": 4.0, "burst_mean_bad": 1.5},
    )
)

register_spec(
    SweepSpec(
        name="delay_ramp",
        axes=(Axis("ramp_to_latency", (0.02, 0.1, 0.4)),),
        base={"participants": 6, "scenario": "seminar", "duration": 20.0,
              "policy": "equal_control", "latency": 0.02,
              "ramp_start": 5.0, "ramp_end": 15.0},
    )
)

register_spec(
    SweepSpec(
        name="partition_heal",
        axes=(Axis("policy", ("free_access", "equal_control")),),
        base={"participants": 6, "scenario": "seminar", "duration": 24.0,
              "partition_start": 8.0, "partition_duration": 4.0},
    )
)

register_spec(
    SweepSpec(
        name="fleet_scale",
        axes=(Axis("sessions", (50, 100, 200, 400)),),
        base={"members": 8, "scenario": "lecture", "duration": 12.0,
              "request_rate": 6.0, "policy": "equal_control",
              "shards": 4},
        runner="fleet",
    )
)

register_spec(
    SweepSpec(
        name="floor_safety",
        axes=(
            Axis("mode", ("free_access", "equal_control",
                          "group_discussion", "direct_contact")),
            Axis("members", (4, 8)),
        ),
        base={"budget": 20_000},
        runner="check",
    )
)
