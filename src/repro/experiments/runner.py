"""Sweep execution: run every cell of a grid, serially or in parallel.

A *cell runner* is a callable ``(Cell) -> Mapping[str, float]`` living
at module level (so it pickles by reference into worker processes).
Two ship built in:

* ``"session"`` — stands up a full :class:`repro.api.session.Session`
  from the cell's parameters, feeds it a seeded workload scenario, and
  measures the report plus the event-log latencies.  Baseline policies
  (``fifo``, ``free_for_all``) have no server-side mode, so cells
  naming them fall through to the policy runner — one sweep can cross
  the paper's modes *and* the ablation baselines on one axis;
* ``"policy"`` — drives a bare :class:`repro.api.policies.FloorPolicy`
  with the same workload events, no network in the loop;
* ``"check"`` — verifies one FCM mode's floor-control net
  (:mod:`repro.check`) and records the verdict census and
  explored-state counts as metrics, so property verdicts ride the same
  BENCH persistence and CI lanes as performance numbers.

:func:`run_sweep` executes the grid with ``workers=1`` (in process) or
across ``concurrent.futures`` worker processes; every cell is fully
determined by its own derived seed, and results are ordered by cell id,
so both paths produce identical :class:`SweepResult` values.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from ..api.config import DynamicsSpec, PartitionSpec
from ..api.scenario import Scenario, ScenarioStep
from ..api.session import Session
from ..check.induct import InductiveEngine
from ..check.nets import floor_model
from ..check.props import Verdict
from ..engine import make_engine_policy
from ..errors import ReproError
from ..events.transcript import transcript_filename
from ..events.types import EventKind
from ..metrics.fold import MetricsFold
from ..net.dynamics import GilbertElliott, RampProfile
from ..workload.generator import WorkloadConfig, generate, member_names
from .spec import CAPTURE_PARAMS, Cell, SweepSpec

__all__ = [
    "CellResult",
    "CellRunner",
    "SweepResult",
    "register_runner",
    "resolve_runner",
    "run_check_cell",
    "run_policy_cell",
    "run_session_cell",
    "run_sweep",
    "runner_names",
    "unregister_runner",
]

CellRunner = Callable[[Cell], Mapping[str, float]]

#: Parameters every built-in cell runner understands, with defaults.
#: The dynamics block (burst/ramp/partition) is off by default: 0.0 or
#: ``None`` disables the respective time-varying behaviour.
_SESSION_DEFAULTS: dict[str, Any] = {
    "participants": 8,
    "policy": "free_access",
    "scenario": "seminar",
    "duration": 30.0,
    "latency": 0.02,
    "jitter": 0.0,
    "loss": 0.0,
    "mean_hold": 4.0,
    "request_rate": 0.5,
    "burst_loss": 0.0,
    "burst_mean_good": 4.0,
    "burst_mean_bad": 1.0,
    "ramp_to_latency": None,
    "ramp_start": 0.0,
    "ramp_end": None,
    "partition_start": None,
    "partition_duration": 2.0,
    "transcript_dir": None,
    "trace_dir": None,
    "transcript_capacity": None,
    "engine": "reference",
}

#: Policy names with no FCM mode behind them (driven without a server).
_BASELINE_POLICIES = frozenset({"fifo", "free_for_all"})


def _cell_value(cell: Cell, key: str) -> Any:
    if key in cell.params:
        return cell.params[key]
    return _SESSION_DEFAULTS[key]


def _float_value(cell: Cell, key: str) -> float:
    value = _cell_value(cell, key)
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ReproError(
            f"cell {cell.cell_id!r}: parameter {key!r} must be numeric, "
            f"got {value!r}"
        ) from None


def _check_known_params(cell: Cell) -> None:
    """Reject parameters the built-in runners would silently ignore —
    a typo must fail loudly, not persist a mislabeled BENCH cell."""
    unknown = sorted(set(cell.params) - set(_SESSION_DEFAULTS))
    if unknown:
        raise ReproError(
            f"cell {cell.cell_id!r}: unknown parameters {unknown!r}; "
            f"the built-in runners understand {sorted(_SESSION_DEFAULTS)}"
        )


def _cell_dynamics(cell: Cell, duration: float) -> list:
    """The cell's network-dynamics specs (empty when all knobs are off).

    ``burst_loss > 0`` enables the Gilbert–Elliott bursty-loss model —
    the good state keeps the cell's static ``loss`` (so crossing both
    knobs stays honest: bursts only ever *add* loss), the bad state
    drops at ``burst_loss``.  ``ramp_to_latency`` enables a latency
    ramp (``ramp_end=None`` rides to the end of the run), and
    ``partition_start`` a partition-and-heal window cutting every
    student off from the server.
    """
    specs: list[DynamicsSpec | PartitionSpec] = []
    burst_loss = _float_value(cell, "burst_loss")
    if burst_loss > 0:
        specs.append(
            DynamicsSpec(
                GilbertElliott(
                    loss_bad=burst_loss,
                    mean_good=_float_value(cell, "burst_mean_good"),
                    mean_bad=_float_value(cell, "burst_mean_bad"),
                )
            )
        )
    if _cell_value(cell, "ramp_to_latency") is not None:
        ramp_end = _cell_value(cell, "ramp_end")
        specs.append(
            DynamicsSpec(
                RampProfile(
                    "base_latency",
                    start=_float_value(cell, "ramp_start"),
                    end=float(ramp_end) if ramp_end is not None else duration,
                    to_value=_float_value(cell, "ramp_to_latency"),
                )
            )
        )
    if _cell_value(cell, "partition_start") is not None:
        specs.append(
            PartitionSpec(
                start=_float_value(cell, "partition_start"),
                duration=_float_value(cell, "partition_duration"),
            )
        )
    return specs


def _workload(cell: Cell):
    """The cell's seeded event list plus its member roster."""
    members = int(_float_value(cell, "participants"))
    if members < 1:
        raise ReproError(f"cell {cell.cell_id!r}: participants must be >= 1")
    config = WorkloadConfig(
        members=members,
        duration=_float_value(cell, "duration"),
        seed=cell.seed,
        mean_hold=_float_value(cell, "mean_hold"),
        request_rate=_float_value(cell, "request_rate"),
    )
    events = generate(str(_cell_value(cell, "scenario")), config)
    return events, member_names(members), config


def run_session_cell(cell: Cell) -> Mapping[str, float]:
    """Execute one cell as a full DMPS session over the simulated LAN.

    Requests are sent without an explicit mode so the server arbitrates
    under the cell's session policy — the only thing that varies along
    a policy axis is the policy itself.

    Metrics stream: a :class:`~repro.metrics.fold.MetricsFold` seeded
    with the cell's roster subscribes to the session bus before the
    scenario runs, so latencies/served/fairness accumulate per event
    instead of re-scanning the transcript afterwards.  With the
    ``transcript_capacity`` execution parameter set, the bus keeps
    only a bounded ring and peak memory per cell drops from O(events)
    to O(members) — the fold saw every event, so the metrics (and the
    cell's seed) are byte-identical either way.
    """
    _check_known_params(cell)
    policy = str(_cell_value(cell, "policy"))
    if policy in _BASELINE_POLICIES:
        return run_policy_cell(cell)
    events, members, config = _workload(cell)
    builder = (
        Session.builder(chair="teacher")
        .seed(cell.seed)
        .link(
            latency=_float_value(cell, "latency"),
            jitter=_float_value(cell, "jitter"),
            loss=_float_value(cell, "loss"),
        )
        .policy(policy)
        .engine(str(_cell_value(cell, "engine")))
    )
    capacity = _cell_value(cell, "transcript_capacity")
    if capacity is not None:
        builder.transcript_capacity(int(capacity))
    builder.participants(*members)
    builder.dynamics(*_cell_dynamics(cell, config.duration))
    steps = []
    for event in events:
        if event.action == "request":
            steps.append(ScenarioStep(event.time, "request_floor", event.member))
        elif event.action == "release":
            steps.append(ScenarioStep(event.time, "release_floor", event.member))
        else:
            steps.append(
                ScenarioStep(
                    event.time,
                    "post",
                    event.member,
                    kwargs={"content": event.content or "(empty)"},
                )
            )
    with builder.build() as session:
        # The cell's own fold: seeded with the student roster (the
        # chair is not part of the fairness population) and fed by a
        # filtered subscription — no buffering, no post-hoc scan.
        fold = MetricsFold(mode="exact", members=members)
        unsubscribe = session.bus.subscribe(
            fold.add,
            kinds=(EventKind.REQUEST, EventKind.GRANT, EventKind.TOKEN_PASS),
        )
        Scenario(steps, name=cell.cell_id).run(
            session, until=config.duration + 1.0
        )
        unsubscribe()
        report = session.report()
        blocked = float(session.network.stats.blocked)
        transcript_dir = _cell_value(cell, "transcript_dir")
        if transcript_dir is not None:
            # Transcript capture: persist this cell's replayable JSONL
            # record next to the BENCH numbers.  Metrics are untouched,
            # so capturing cannot perturb the byte-identical BENCH
            # guarantee.
            directory = Path(str(transcript_dir))
            directory.mkdir(parents=True, exist_ok=True)
            session.save_transcript(
                directory / transcript_filename(cell.cell_id)
            )
        trace_dir = _cell_value(cell, "trace_dir")
        if trace_dir is not None:
            # Trace capture mirrors transcript capture: the causal
            # plane is a pure read of the retained events, so the
            # TRACE document rides along without perturbing metrics —
            # and ``repro trace record`` on the captured transcript
            # reproduces its bytes exactly.
            from ..trace import save_trace, trace_filename

            directory = Path(str(trace_dir))
            directory.mkdir(parents=True, exist_ok=True)
            save_trace(
                directory / trace_filename(cell.cell_id),
                session.tracer().spans(),
                meta={"seed": cell.seed},
            )
    return {
        "requests": float(report.requests),
        "granted": float(report.granted),
        "queued": float(report.queued),
        "denied": float(report.denied),
        "served": float(fold.served),
        **fold.latency_summary(),
        "fairness": fold.fairness(),
        "loss_rate": report.loss_rate,
        "net_latency": report.mean_latency,
        "blocked": blocked,
        "messages_sent": float(report.messages_sent),
        "posts": float(report.posts_accepted),
        "sim_time": report.duration,
        "network_modeled": 1.0,
    }


def run_policy_cell(cell: Cell) -> Mapping[str, float]:
    """Execute one cell against a bare floor policy (no network).

    The same seeded workload drives ``policy.request`` /
    ``policy.release`` directly; latency is queue wait alone, which is
    exactly what makes the baselines comparable to the session cells'
    request-to-service times.  Network parameters (latency/jitter/loss)
    do not apply here; cells record ``network_modeled = 0`` so a grid
    crossing baselines with network axes stays honest in the persisted
    BENCH document.  ``transcript_dir``/``trace_dir`` likewise do not
    apply: a bare policy keeps no event bus, so baseline cells save no
    transcript and no trace.
    """
    _check_known_params(cell)
    events, members, config = _workload(cell)
    policy = make_engine_policy(
        str(_cell_value(cell, "policy")),
        engine=str(_cell_value(cell, "engine")),
    )
    # No FloorEvent objects in this loop, so the kernel is fed through
    # its low-level requested/serve primitives — same pairing, same
    # fairness population, same bytes as the session runner's
    # subscription-fed fold.
    fold = MetricsFold(mode="exact", members=members)
    requests = granted = queued = posts = 0

    for event in events:
        if event.action == "request":
            requests += 1
            fold.requested(event.member, event.time)
            if policy.request(event.member, now=event.time):
                granted += 1
                fold.serve(event.member, event.time)
            else:
                queued += 1
        elif event.action == "release":
            successor = policy.release(event.member, now=event.time)
            if successor is not None:
                fold.serve(successor, event.time)
        else:
            posts += 1
    return {
        "requests": float(requests),
        "granted": float(granted),
        "queued": float(queued),
        "denied": 0.0,
        "served": float(fold.served),
        **fold.latency_summary(),
        "fairness": fold.fairness(),
        "loss_rate": 0.0,
        "net_latency": 0.0,
        "blocked": 0.0,
        "messages_sent": 0.0,
        "posts": float(posts),
        "sim_time": config.duration,
        "network_modeled": 0.0,
    }


#: Parameters the ``check`` cell runner understands, with defaults.
_CHECK_DEFAULTS: dict[str, Any] = {
    "mode": "equal_control",
    "members": 4,
    "budget": 20_000,
}


def run_check_cell(cell: Cell) -> Mapping[str, float]:
    """Verify one FCM mode's floor-control net and report the verdicts.

    Parameters: ``mode`` (one of the four FCM modes), ``members``
    (model size), ``budget`` (explicit-fallback state cap).  Metrics
    are the verdict census (``proved``/``violated``/``unknown``), how
    many of the proofs were inductive (``proved_inductively`` — the
    acceptance bar: the mutex must not depend on budget survival),
    the explored-state count of the explicit fallback, and
    ``mutex_proved`` for the headline property.  Everything is
    deterministic, so check sweeps persist byte-identically like any
    other BENCH document.
    """
    # Capture params (transcript_dir/trace_dir) may ride any sweep's
    # base — e.g. ``repro sweep --transcripts`` over a check spec.  A
    # check cell keeps no event bus, so like the baseline runner it
    # skips capture rather than rejecting the whole sweep.
    unknown = sorted(set(cell.params) - set(_CHECK_DEFAULTS) - CAPTURE_PARAMS)
    if unknown:
        raise ReproError(
            f"cell {cell.cell_id!r}: unknown parameters {unknown!r}; "
            f"the check runner understands {sorted(_CHECK_DEFAULTS)}"
        )

    def value(key: str) -> Any:
        return cell.params.get(key, _CHECK_DEFAULTS[key])

    members = int(value("members"))
    budget = int(value("budget"))
    model = floor_model(str(value("mode")), members=members)
    report = InductiveEngine(model.net).check(model.properties, budget=budget)
    census = {verdict.value: 0 for verdict in Verdict}
    inductive = 0
    for verdict in report.verdicts:
        census[verdict.verdict.value] += 1
        if verdict.verdict is Verdict.PROVED and verdict.method in (
            "invariant",
            "state-equation",
        ):
            inductive += 1
    mutex = report.verdict_for(model.mutex.name)
    return {
        "properties": float(len(report.verdicts)),
        "proved": float(census["proved"]),
        "violated": float(census["violated"]),
        "unknown": float(census["unknown"]),
        "proved_inductively": float(inductive),
        "mutex_proved": float(mutex.verdict is Verdict.PROVED),
        "states_explored": float(report.explored),
    }


# ----------------------------------------------------------------------
# Runner registry
# ----------------------------------------------------------------------
_RUNNERS: dict[str, CellRunner] = {}


def register_runner(name: str, runner: CellRunner) -> None:
    """Register a cell runner under a unique name.

    The callable must be defined at module level: worker processes
    receive it by pickled reference.

    Re-registering the *same* callable under the same name is a no-op,
    so module-level registration stays safe when worker processes
    (spawn start method) or tools re-import this module; only a
    *conflicting* registration is an error.

    Raises
    ------
    ReproError
        If the name is already taken by a different runner.
    """
    existing = _RUNNERS.get(name)
    if existing is not None and existing is not runner:
        raise ReproError(f"cell runner {name!r} is already registered")
    _RUNNERS[name] = runner


def unregister_runner(name: str) -> None:
    """Remove a registered runner (no-op when unknown)."""
    _RUNNERS.pop(name, None)


def resolve_runner(name: str) -> CellRunner:
    """Look up a registered cell runner by name.

    Lazily-provided runners (:data:`_LAZY_RUNNERS`) are imported and
    registered on first use — the fleet runner lives in
    :mod:`repro.fabric`, which itself builds on the sweep machinery,
    so an eager import here would be circular.

    Raises
    ------
    ReproError
        On an unknown runner name (the message lists what exists).
    """
    if name not in _RUNNERS and name in _LAZY_RUNNERS:
        _LAZY_RUNNERS[name]()
    if name not in _RUNNERS:
        raise ReproError(
            f"unknown cell runner {name!r}; registered: {runner_names()}"
        )
    return _RUNNERS[name]


def runner_names() -> list[str]:
    """All registered (or lazily available) runner names, sorted."""
    return sorted(set(_RUNNERS) | set(_LAZY_RUNNERS))


def _register_fleet_runner() -> None:
    from ..fabric.fleet import run_fleet_cell

    register_runner("fleet", run_fleet_cell)


#: Runners registered on first resolve to avoid import cycles.
_LAZY_RUNNERS: dict[str, Callable[[], None]] = {
    "fleet": _register_fleet_runner,
}


register_runner("session", run_session_cell)
register_runner("policy", run_policy_cell)
register_runner("check", run_check_cell)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellResult:
    """One executed cell: the grid point plus its measured metrics."""

    cell: Cell
    metrics: Mapping[str, float]


@dataclass(frozen=True)
class SweepResult:
    """Every cell of one sweep, in grid enumeration order.

    Enumeration order follows the declared axes (so numeric axes read
    4, 8, 16 — not the lexicographic 16, 4, 8) and depends only on the
    spec and the root seed — never on worker count or completion order
    — which is what the byte-identical persistence guarantee rests on.
    """

    spec: SweepSpec
    results: tuple[CellResult, ...]

    def __len__(self) -> int:
        return len(self.results)

    def cell(self, cell_id: str) -> CellResult:
        """Look up one cell's result by its canonical id.

        Raises
        ------
        ReproError
            On an unknown cell id (the message lists what exists).
        """
        for result in self.results:
            if result.cell.cell_id == cell_id:
                return result
        known = [result.cell.cell_id for result in self.results]
        raise ReproError(f"no cell {cell_id!r} in this sweep; cells: {known}")

    def metric_names(self) -> list[str]:
        """Union of metric keys across cells, sorted."""
        names: set[str] = set()
        for result in self.results:
            names.update(result.metrics)
        return sorted(names)

    def aggregate(self, by: str) -> dict[Any, dict[str, float]]:
        """Mean of every metric, grouped by one parameter's value.

        Groups appear in cell-id order; cells missing the parameter or
        a metric are simply skipped for that entry.
        """
        grouped: dict[Any, list[CellResult]] = {}
        for result in self.results:
            if by not in result.cell.params:
                continue
            grouped.setdefault(result.cell.params[by], []).append(result)
        aggregated: dict[Any, dict[str, float]] = {}
        for value, members in grouped.items():
            means: dict[str, float] = {}
            for name in self.metric_names():
                samples = [
                    member.metrics[name]
                    for member in members
                    if name in member.metrics
                ]
                if samples:
                    means[name] = sum(samples) / len(samples)
            aggregated[value] = means
        return aggregated

    def table(self, by: str | None = None, metrics: list[str] | None = None) -> str:
        """Render the comparison table the CLI prints.

        One row per cell, or one row per group value when ``by`` names
        a parameter to aggregate over; ``metrics`` restricts and orders
        the columns.
        """
        columns = metrics if metrics is not None else self.metric_names()
        if by is None:
            headers = ["cell"] + columns
            rows = [
                (result.cell.cell_id, result.metrics) for result in self.results
            ]
        else:
            headers = [by] + columns
            rows = [
                (str(value), means) for value, means in self.aggregate(by).items()
            ]
        label_width = max([len(headers[0])] + [len(label) for label, __ in rows])
        lines = [
            " | ".join(
                [f"{headers[0]:>{label_width}}"]
                + [f"{header:>12}" for header in headers[1:]]
            )
        ]
        lines.append("-" * len(lines[0]))
        for label, values in rows:
            cells = [f"{label:>{label_width}}"]
            for name in columns:
                value = values.get(name)
                cells.append(f"{'--':>12}" if value is None else f"{value:>12.4f}")
            lines.append(" | ".join(cells))
        return "\n".join(lines)


def _pool_context():
    """The multiprocessing context for sweep workers.

    Prefers ``fork`` (workers inherit ``sys.path`` and any runners the
    parent registered after import); falls back to the platform
    default elsewhere.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def _run_cell(runner: CellRunner, cell: Cell) -> CellResult:
    metrics = dict(runner(cell))
    for name, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ReproError(
                f"cell {cell.cell_id!r}: metric {name!r} must be a number, "
                f"got {value!r}"
            )
    return CellResult(cell=cell, metrics={k: float(v) for k, v in metrics.items()})


def run_sweep(spec: SweepSpec, workers: int = 1) -> SweepResult:
    """Execute every cell of ``spec``; results follow grid order.

    ``workers=1`` runs in-process; ``workers>1`` fans cells out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`.  Each cell is
    deterministic given its derived seed, so the two paths return
    identical results (pinned by the determinism tests).
    """
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers!r}")
    runner = resolve_runner(spec.runner)
    cells = spec.cells()
    if workers == 1 or len(cells) <= 1:
        results = [_run_cell(runner, cell) for cell in cells]
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(cells)), mp_context=_pool_context()
        ) as pool:
            futures = [pool.submit(_run_cell, runner, cell) for cell in cells]
            results = [future.result() for future in futures]
    results.sort(key=lambda result: result.cell.index)
    return SweepResult(spec=spec, results=tuple(results))
