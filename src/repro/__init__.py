"""repro — reproduction of Shih et al., "Using the Floor Control
Mechanism in Distributed Multimedia Presentation System" (ICDCS 2001).

The package provides:

* :mod:`repro.api` — the high-level facade: session builder, the
  ``Session`` object, scripted scenarios, and the pluggable floor
  policy registry (start here);
* :mod:`repro.core` — the floor control mechanism (the paper's primary
  contribution): four modes, the FCM-Arbitrate and Media-Suspend
  algorithms, groups/invitations, the server-side manager;
* :mod:`repro.check` — the verification subsystem: property specs
  (mutex/bounds/invariants), the byte-interning explicit-state engine,
  induction-backed proofs (place invariants + state equation), and
  live session monitors;
* :mod:`repro.events` — the typed event bus: structured payloads per
  event kind, indexed queries, filtered subscriptions, and
  deterministic transcript record/replay;
* :mod:`repro.petri` — the Petri net substrate: classic nets, timed
  nets, prioritized nets (Yang et al.), OCPN, XOCPN, and DOCPN with
  global-clock admission;
* :mod:`repro.temporal` — Allen relations, presentation specs, the
  spec-to-net compiler, schedule computation (synchronous sets), and
  verification;
* :mod:`repro.media` — typed media objects, QoS channels, streams,
  playout skew measurement;
* :mod:`repro.net` — the discrete-event network simulator and a
  reliable transport;
* :mod:`repro.clock` — virtual time, drifting clocks, Cristian sync,
  and the global-clock admission rule;
* :mod:`repro.session` — the DMPS server/client endpoints, whiteboard,
  presence lights, and the asyncio real-time bridge;
* :mod:`repro.workload` — seeded scenario generators and trace replay;
* :mod:`repro.baselines` — FIFO floor control and free-for-all
  baselines.

Quickstart (the :mod:`repro.api` facade)::

    from repro.api import Session

    with Session.build("alice", chair="teacher") as s:
        s.post("alice", "hello class")
        s.run_until(2.0)
        assert [e.content for e in s.board()] == ["hello class"]

The raw layers stay importable for finer-grained wiring — see the
docstring of :mod:`repro.session`.
"""

__version__ = "1.0.0"

from . import baselines, clock, core, events, media, net, petri, session, temporal, workload
from . import api, check
from .errors import ReproError

__all__ = [
    "ReproError",
    "__version__",
    "api",
    "baselines",
    "check",
    "clock",
    "core",
    "events",
    "media",
    "net",
    "petri",
    "session",
    "temporal",
    "workload",
]
