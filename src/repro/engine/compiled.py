"""Array-compiled floor policies: the simulation core as flat arrays.

:class:`CompiledEngine` re-implements the four FCM-mode policies of
:class:`~repro.api.policies.ArbitratedPolicy` — and
:class:`CompiledFIFO` / :class:`CompiledFreeForAll` the two baselines —
over interned member ids, integer token queues and the columnar event
log of :mod:`repro.engine.log`, instead of the reference engines'
object graph (registry, resource vectors, request/grant dataclasses,
frozen events).  The compiled classes satisfy the same
:class:`~repro.api.policies.FloorPolicy` protocol (plus the
``request_batch`` fleet seam), so every consumer of the reference
policies — fleet sessions, sweep cells, benchmarks — can swap engines
with one knob.

Correctness is pinned by construction *and* by the replay oracle:

* every decision (`request`/`request_batch`/`release` return values,
  ``speakers()``/``waiting()``) matches the reference policy for any
  operation sequence;
* the materialized transcript (:meth:`events`) is byte-identical to
  the reference transcript under ``repro.events.transcript``
  canonical JSON, including ring-mode eviction counts;
* the arbitration counters (:attr:`CompiledEngine.stats`) match
  :class:`~repro.core.arbitrator.ArbitrationStats` field for field,
  so fleet metric folds are byte-identical across engines.

What the compiled engine skips — and why it is safe here: membership
guards collapse to a byte-array bit per interned member (the reference
policies auto-join every requester, so Guard 1 can never fail);
resource classification collapses to nothing (the reference policies'
private server is provisioned with generous resources, so Guard 2 is
always ``NORMAL`` with zero demand); and events become six integer
column writes (materialized lazily).  Anything outside those
conventions — custom registered policies, resource pressure, explicit
targets — stays on the reference engine.
"""

from __future__ import annotations

from array import array

from ..core.arbitrator import ArbitrationStats
from ..core.modes import FCMMode
from ..errors import ReproError
from ..trace import timing as _timing
from .log import (
    K_GRANT,
    K_INVITE,
    K_INVITE_RESPONSE,
    K_JOIN,
    K_MODE_CHANGE,
    K_QUEUE,
    K_REQUEST,
    K_TOKEN_PASS,
    ColumnarLog,
)

__all__ = [
    "CompiledEngine",
    "CompiledFIFO",
    "CompiledFreeForAll",
    "compile_policy",
    "compiled_policy_names",
]

_SESSION = 0  # group id of the main session group
_SUBGROUP = 1  # group id of the shared discussion subgroup


class CompiledEngine:
    """One FCM mode compiled to flat arrays (reference: the mode half of
    :class:`~repro.api.policies.ArbitratedPolicy`).

    The engine keeps the reference policy's standalone conventions —
    requesters are auto-joined on first use; *group discussion* invites
    every requester into one shared subgroup (``"session/sub0"``)
    chaired by the session chair; *direct contact* pairs the requester
    with the chair (a chair request without an explicit peer is
    refused without any event, exactly like the reference).  Event
    times are all ``0.0`` because the reference policy's private clock
    never advances.

    Parameters
    ----------
    mode:
        The FCM mode (or its wire value).
    chair:
        Session chair name (interned as member id 0, never JOIN-logged).
    log_capacity:
        Transcript ring bound; ``None`` keeps everything.
    numpy:
        Columnar backend flag (see :mod:`repro.engine.log`).
    """

    __slots__ = (
        "mode", "chair", "log", "stats",
        "_ids", "_names", "_joined", "_in_queue", "_in_sub",
        "_holder", "_queue", "_has_sub", "_pairs",
    )

    def __init__(
        self,
        mode: FCMMode | str,
        chair: str = "teacher",
        log_capacity: int | None = None,
        numpy: bool | None = None,
    ) -> None:
        self.mode = mode if isinstance(mode, FCMMode) else FCMMode(mode)
        self.chair = chair
        self._names: list[str] = [chair]
        self._ids: dict[str, int] = {chair: 0}
        self._joined = bytearray((1,))
        self._in_queue = bytearray((0,))
        self._in_sub = bytearray((0,))
        self._holder = -1
        self._queue: list[int] = []
        self._has_sub = False
        self._pairs: list[tuple[int, int]] = []
        self.stats = ArbitrationStats()
        self.log = ColumnarLog(
            self._names,
            ["session", "session/sub0"],
            self.mode.value,
            capacity=log_capacity,
            numpy=numpy,
        )
        # The reference policy's constructor re-asserts its mode on the
        # session group, so the first transcript event is always a
        # MODE_CHANGE from the server's initial free_access.
        self.log.append(0.0, K_MODE_CHANGE, 0, _SESSION)

    @property
    def name(self) -> str:
        """Registry name — the mode's wire value."""
        return self.mode.value

    @property
    def evicted(self) -> int:
        """Events dropped by the transcript ring (0 when unbounded)."""
        return self.log.evicted

    # ------------------------------------------------------------------
    # FloorPolicy protocol
    # ------------------------------------------------------------------
    def request(self, member: str, now: float = 0.0) -> bool:
        """Arbitrate one floor request; ``True`` when granted."""
        mode = self.mode
        mid = self._ensure(member)
        if mode is FCMMode.FREE_ACCESS:
            self.log.append(0.0, K_REQUEST, mid)
            self.log.append(0.0, K_GRANT, mid)
            self.stats.granted += 1
            return True
        if mode is FCMMode.EQUAL_CONTROL:
            self.log.append(0.0, K_REQUEST, mid)
            return self._decide_equal_control(mid, position=True)
        if mode is FCMMode.GROUP_DISCUSSION:
            self._admit_to_subgroup(mid)
            self.log.append(0.0, K_REQUEST, mid)
            self.log.append(0.0, K_GRANT, mid)
            self.stats.granted += 1
            return True
        # Direct contact: the peer defaults to the chair; the chair's
        # own request is refused without any event (reference parity).
        if mid == 0:
            return False
        self.log.append(0.0, K_REQUEST, mid)
        self.log.append(0.0, K_GRANT, mid)
        self.stats.granted += 1
        self._pairs.append((mid, 0))
        return True

    def request_batch(self, submissions: list[tuple[str, float]]) -> list[bool]:
        """Arbitrate one tick's requests together (the fleet hot path).

        Session modes use the batch transcript layout — every REQUEST
        logged before any outcome, queue positions omitted — exactly
        like :meth:`~repro.core.server.FloorControlServer.request_floor_batch`;
        the subgroup modes fall back to the per-call path, mirroring
        the reference policy.
        """
        with _timing.maybe_span("engine.request_batch"):
            return self._request_batch(submissions)

    def _request_batch(self, submissions: list[tuple[str, float]]) -> list[bool]:
        if self.mode in (FCMMode.GROUP_DISCUSSION, FCMMode.DIRECT_CONTACT):
            return [self.request(member, now) for member, now in submissions]
        append = self.log.append
        mids = [self._ensure(member) for member, _ in submissions]
        for mid in mids:
            append(0.0, K_REQUEST, mid)
        if self.mode is FCMMode.FREE_ACCESS:
            for mid in mids:
                append(0.0, K_GRANT, mid)
            self.stats.granted += len(mids)
            return [True] * len(mids)
        return [self._decide_equal_control(mid, position=False) for mid in mids]

    def release(self, member: str, now: float = 0.0) -> str | None:
        """Pass the token (equal control) or close a contact pair."""
        if self.mode is FCMMode.EQUAL_CONTROL:
            mid = self._ids.get(member, -1)
            if mid < 0 or self._holder != mid:
                return None  # reference swallows the stale-release error
            if self._queue:
                successor = self._queue.pop(0)
                self._in_queue[successor] = 0
                self._holder = successor
                self.log.append(0.0, K_TOKEN_PASS, mid, _SESSION, successor)
                return self._names[successor]
            self._holder = -1
            self.log.append(0.0, K_TOKEN_PASS, mid, _SESSION, -1)
            return None
        if self.mode is FCMMode.DIRECT_CONTACT:
            mid = self._ids.get(member, -1)
            if mid >= 0:
                self._pairs = [
                    pair for pair in self._pairs if mid not in pair
                ]
        return None

    def speakers(self) -> set[str]:
        """Members the mode currently allows to deliver."""
        names = self._names
        if self.mode is FCMMode.EQUAL_CONTROL:
            return {names[self._holder]} if self._holder >= 0 else set()
        if self.mode is FCMMode.GROUP_DISCUSSION:
            if not self._has_sub:
                return set()
            return {names[mid] for mid, flag in enumerate(self._in_sub) if flag}
        if self.mode is FCMMode.DIRECT_CONTACT:
            return {names[mid] for pair in self._pairs for mid in pair}
        return {names[mid] for mid, flag in enumerate(self._joined) if flag}

    def waiting(self) -> list[str]:
        """The equal-control token queue (empty for the other modes)."""
        return [self._names[mid] for mid in self._queue]

    def events(self):
        """The retained transcript as reference-identical events."""
        return self.log.events()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure(self, member: str) -> int:
        mid = self._ids.get(member)
        if mid is None:
            mid = len(self._names)
            self._ids[member] = mid
            self._names.append(member)
            self._joined.append(1)
            self._in_queue.append(0)
            self._in_sub.append(0)
            self.log.append(0.0, K_JOIN, mid)
        return mid

    def _decide_equal_control(self, mid: int, position: bool) -> bool:
        holder = self._holder
        if holder == mid:
            self.log.append(0.0, K_GRANT, mid)
            self.stats.granted += 1
            return True
        if holder < 0:
            self._holder = mid
            self.log.append(0.0, K_GRANT, mid)
            self.stats.granted += 1
            return True
        if not self._in_queue[mid]:
            self._queue.append(mid)
            self._in_queue[mid] = 1
        rank = self._queue.index(mid) + 1 if position else -1
        self.log.append(0.0, K_QUEUE, mid, _SESSION, holder, rank)
        self.stats.queued += 1
        return False

    def _admit_to_subgroup(self, mid: int) -> None:
        if not self._has_sub:
            self._has_sub = True
            self._in_sub[0] = 1  # subgroup creation itself is unlogged
        if not self._in_sub[mid]:
            self.log.append(0.0, K_INVITE, 0, _SUBGROUP, mid)
            self.log.append(0.0, K_INVITE_RESPONSE, mid, _SUBGROUP)
            self._in_sub[mid] = 1


class CompiledFIFO:
    """The FIFO baseline compiled to flat arrays (reference:
    :class:`~repro.api.policies.FIFOPolicy` over
    :class:`~repro.baselines.fifo_floor.FIFOFloorControl`).

    Decision semantics, counters (:attr:`grants`, :attr:`waits`) and
    the transcript convention — JOIN on first request, REQUEST plus
    GRANT/QUEUE per ask (queue events carry the holder reason and the
    1-based position), TOKEN_PASS on a successful release, all at
    workload timestamps — match the reference wrapper exactly.
    """

    name = "fifo"

    __slots__ = ("log", "grants", "waits", "_ids", "_names", "_seen",
                 "_holder", "_queue", "_in_queue")

    def __init__(self, log_capacity: int | None = None, numpy: bool | None = None) -> None:
        self._names: list[str] = []
        self._ids: dict[str, int] = {}
        self._seen = bytearray()
        self._holder = -1
        self._queue: list[int] = []
        self._in_queue = bytearray()
        self.grants = 0
        self.waits = 0
        self.log = ColumnarLog(
            self._names, ["session"], "fifo", capacity=log_capacity, numpy=numpy
        )

    def _intern(self, member: str) -> int:
        mid = self._ids.get(member)
        if mid is None:
            mid = len(self._names)
            self._ids[member] = mid
            self._names.append(member)
            self._seen.append(0)
            self._in_queue.append(0)
        return mid

    def request(self, member: str, now: float = 0.0) -> bool:
        """Single global queue: first asker speaks, the rest wait."""
        mid = self._intern(member)
        append = self.log.append
        if not self._seen[mid]:
            self._seen[mid] = 1
            append(now, K_JOIN, mid)
        append(now, K_REQUEST, mid)
        holder = self._holder
        if holder == mid:
            append(now, K_GRANT, mid)
            return True
        if holder < 0:
            self._holder = mid
            self.grants += 1
            append(now, K_GRANT, mid)
            return True
        if not self._in_queue[mid]:
            self._queue.append(mid)
            self._in_queue[mid] = 1
            self.waits += 1
        append(now, K_QUEUE, mid, _SESSION, holder, self._queue.index(mid) + 1)
        return False

    def release(self, member: str, now: float = 0.0) -> str | None:
        """Head of the queue takes over; stale releases are ignored."""
        mid = self._ids.get(member, -1)
        if mid < 0 or self._holder != mid:
            return None
        if self._queue:
            successor = self._queue.pop(0)
            self._in_queue[successor] = 0
            self._holder = successor
            self.grants += 1
            self.log.append(now, K_TOKEN_PASS, mid, _SESSION, successor)
            return self._names[successor]
        self._holder = -1
        self.log.append(now, K_TOKEN_PASS, mid, _SESSION, -1)
        return None

    def speakers(self) -> set[str]:
        """The single current holder (or nobody)."""
        return {self._names[self._holder]} if self._holder >= 0 else set()

    def waiting(self) -> list[str]:
        """The FIFO wait queue."""
        return [self._names[mid] for mid in self._queue]

    def events(self):
        """The retained transcript as reference-identical events."""
        return self.log.events()

    @property
    def evicted(self) -> int:
        """Events dropped by the transcript ring (0 when unbounded)."""
        return self.log.evicted


class CompiledFreeForAll:
    """The no-floor-control baseline compiled to flat arrays
    (reference: :class:`~repro.api.policies.FreeForAllPolicy` over
    :class:`~repro.baselines.free_for_all.FreeForAll`).

    Every request is granted; collisions — posts from distinct authors
    closer than ``collision_window`` — are scored with the reference
    scan over the recent post tail, on parallel time/author arrays
    instead of a list of tuples.
    """

    name = "free_for_all"

    __slots__ = ("log", "collision_window", "collisions",
                 "_ids", "_names", "_seen", "_post_times", "_post_authors")

    def __init__(
        self,
        collision_window: float = 0.25,
        log_capacity: int | None = None,
        numpy: bool | None = None,
    ) -> None:
        self.collision_window = collision_window
        self.collisions = 0
        self._names: list[str] = []
        self._ids: dict[str, int] = {}
        self._seen = bytearray()
        self._post_times = array("d")
        self._post_authors = array("q")
        self.log = ColumnarLog(
            self._names, ["session"], "free_for_all",
            capacity=log_capacity, numpy=numpy,
        )

    def request(self, member: str, now: float = 0.0) -> bool:
        """Always granted — that is the point of this baseline."""
        mid = self._ids.get(member)
        if mid is None:
            mid = len(self._names)
            self._ids[member] = mid
            self._names.append(member)
            self._seen.append(1)
            self.log.append(now, K_JOIN, mid)
        self.log.append(now, K_REQUEST, mid)
        times = self._post_times
        authors = self._post_authors
        window = self.collision_window
        for index in range(len(times) - 1, -1, -1):
            if now - times[index] > window:
                break
            if authors[index] != mid:
                self.collisions += 1
                break
        times.append(now)
        authors.append(mid)
        self.log.append(now, K_GRANT, mid)
        return True

    def release(self, member: str, now: float = 0.0) -> str | None:
        """No floor to release."""
        return None

    def speakers(self) -> set[str]:
        """Everyone who ever posted (no floor control)."""
        return {self._names[mid] for mid, flag in enumerate(self._seen) if flag}

    def waiting(self) -> list[str]:
        """Nobody ever waits."""
        return []

    def posts(self) -> int:
        """How many uncontrolled posts were recorded."""
        return len(self._post_times)

    def collision_rate(self) -> float:
        """Fraction of posts that collided with another author's."""
        if not self._post_times:
            return 0.0
        return self.collisions / len(self._post_times)

    def events(self):
        """The retained transcript as reference-identical events."""
        return self.log.events()

    @property
    def evicted(self) -> int:
        """Events dropped by the transcript ring (0 when unbounded)."""
        return self.log.evicted


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------
_COMPILED_BASELINES = {
    "fifo": CompiledFIFO,
    "free_for_all": CompiledFreeForAll,
}


def compiled_policy_names() -> list[str]:
    """Policy names the compiled engine covers (the reference registry
    stays open; the compiled set is deliberately closed)."""
    return sorted([mode.value for mode in FCMMode] + list(_COMPILED_BASELINES))


def compile_policy(name: str, **kwargs):
    """Instantiate the compiled counterpart of a reference policy.

    Accepts the four FCM mode values plus ``"fifo"`` and
    ``"free_for_all"``; keyword arguments pass through to the class
    (``log_capacity``/``numpy`` everywhere, ``chair`` for the modes,
    ``collision_window`` for free-for-all).

    Raises
    ------
    ReproError
        For a policy the compiled engine does not cover — custom
        registered policies run on the reference engine only.
    """
    factory = _COMPILED_BASELINES.get(name)
    if factory is not None:
        return factory(**kwargs)
    try:
        mode = FCMMode(name)
    except ValueError:
        raise ReproError(
            f"no compiled engine for policy {name!r}; "
            f"compiled: {compiled_policy_names()}"
        ) from None
    return CompiledEngine(mode, **kwargs)
