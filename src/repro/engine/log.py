"""Columnar event storage for the array-compiled engine.

The reference engines allocate one frozen :class:`~repro.events.types.FloorEvent`
(plus a ``MappingProxyType`` payload) per event as the simulation runs.
:class:`ColumnarLog` stores the same information as parallel flat
columns instead — a kind code, an interned member id, a group id and
two auxiliary integers per event — and only materializes
:class:`FloorEvent` objects when somebody actually reads the log
(:meth:`events`).  The hot loop therefore appends a handful of machine
integers instead of building an object graph, which is where most of
the compiled engine's speedup comes from.

Byte-identity contract
----------------------
:meth:`events` reconstructs, field for field, the exact events the
reference engine would have logged for the same operation sequence —
including derived strings such as the queue reason
``f"floor held by {holder!r}"`` and the optional ``position`` payload
entry — so a transcript saved from a compiled run is byte-identical
to the reference transcript (``repro replay`` is the oracle).

Ring mode mirrors :class:`~repro.events.bus.EventBus`: with a finite
``capacity`` the log keeps the most recent ``capacity`` events, counts
each drop in :attr:`evicted`, and compacts its columns amortized so a
bounded log never grows without bound.

Backends
--------
Columns are stdlib :mod:`array`/:class:`bytearray` by default.  Setting
``numpy=True`` (or exporting ``REPRO_ENGINE_NUMPY=1``) swaps the
integer/float columns for growable :mod:`numpy` buffers when numpy is
importable; the flag changes storage only, never the materialized
events.  With ``numpy=None`` the environment variable decides.
"""

from __future__ import annotations

import os
from array import array

from ..events.types import EventKind, FloorEvent

__all__ = ["ColumnarLog"]

# Kind codes (column values) for the event vocabulary the compiled
# policies emit.  DENY/ABORT/SUSPEND never occur under the compiled
# engines' conventions (members are auto-joined and resources are
# generous by construction), so they have no codes.
K_JOIN = 0
K_MODE_CHANGE = 1
K_REQUEST = 2
K_GRANT = 3
K_QUEUE = 4
K_TOKEN_PASS = 5
K_INVITE = 6
K_INVITE_RESPONSE = 7

#: Compaction threshold, mirroring ``repro.events.bus._COMPACT_THRESHOLD``.
_COMPACT_THRESHOLD = 1024


def _numpy_enabled(flag: bool | None) -> bool:
    if flag is not None:
        return flag
    return os.environ.get("REPRO_ENGINE_NUMPY", "").lower() in ("1", "true", "yes", "on")


class _NumpyColumn:
    """A growable numpy-backed column with the tiny slice of the
    ``array`` interface the log needs (append / index / del-front)."""

    __slots__ = ("_data", "_size")

    def __init__(self, dtype) -> None:
        import numpy

        self._data = numpy.zeros(64, dtype=dtype)
        self._size = 0

    def append(self, value) -> None:
        if self._size == len(self._data):
            import numpy

            grown = numpy.zeros(len(self._data) * 2, dtype=self._data.dtype)
            grown[: self._size] = self._data
            self._data = grown
        self._data[self._size] = value
        self._size += 1

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: int):
        return self._data[index].item()

    def trim_front(self, count: int) -> None:
        self._data[: self._size - count] = self._data[count : self._size]
        self._size -= count


def _int_column(use_numpy: bool):
    if use_numpy:
        return _NumpyColumn("int64")
    return array("q")


def _float_column(use_numpy: bool):
    if use_numpy:
        return _NumpyColumn("float64")
    return array("d")


def _trim_front(column, count: int) -> None:
    if isinstance(column, _NumpyColumn):
        column.trim_front(count)
    else:
        del column[:count]


class ColumnarLog:
    """Flat-column event log with lazy :class:`FloorEvent` materialization.

    Parameters
    ----------
    member_names:
        The owning engine's intern table (id -> member name).  Shared by
        reference, not copied, so names interned after an event was
        appended still resolve at materialization time.
    group_names:
        Group id -> group id string (``0`` is always the session group).
    mode_value:
        The wire value recorded as ``data["mode"]`` on request/outcome
        events (an FCM mode value or a baseline policy name).
    capacity:
        Ring bound; ``None`` keeps every event.
    numpy:
        Backend flag (see module docstring).
    """

    __slots__ = (
        "member_names", "group_names", "mode_value", "capacity", "evicted",
        "_times", "_kinds", "_members", "_groups", "_aux_a", "_aux_b", "_start",
    )

    def __init__(
        self,
        member_names: list[str],
        group_names: list[str],
        mode_value: str,
        capacity: int | None = None,
        numpy: bool | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive or None, got {capacity!r}")
        use_numpy = _numpy_enabled(numpy)
        self.member_names = member_names
        self.group_names = group_names
        self.mode_value = mode_value
        self.capacity = capacity
        self.evicted = 0
        self._times = _float_column(use_numpy)
        self._kinds = bytearray()
        self._members = _int_column(use_numpy)
        self._groups = bytearray()
        self._aux_a = _int_column(use_numpy)
        self._aux_b = _int_column(use_numpy)
        self._start = 0

    def __len__(self) -> int:
        return len(self._kinds) - self._start

    @property
    def numpy_backed(self) -> bool:
        """Whether the integer/float columns use the numpy backend."""
        return isinstance(self._members, _NumpyColumn)

    def append(
        self,
        time: float,
        kind: int,
        member: int,
        group: int = 0,
        aux_a: int = -1,
        aux_b: int = -1,
    ) -> None:
        """Append one event as six column writes (the hot path)."""
        self._times.append(time)
        self._kinds.append(kind)
        self._members.append(member)
        self._groups.append(group)
        self._aux_a.append(aux_a)
        self._aux_b.append(aux_b)
        if self.capacity is not None and len(self._kinds) - self._start > self.capacity:
            self._start += 1
            self.evicted += 1
            start = self._start
            if start >= _COMPACT_THRESHOLD and start * 2 >= len(self._kinds):
                _trim_front(self._times, start)
                del self._kinds[:start]
                _trim_front(self._members, start)
                del self._groups[:start]
                _trim_front(self._aux_a, start)
                _trim_front(self._aux_b, start)
                self._start = 0

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def events(self) -> list[FloorEvent]:
        """The retained events as reference-identical :class:`FloorEvent`
        objects (oldest first)."""
        return [self._materialize(i) for i in range(self._start, len(self._kinds))]

    def __iter__(self):
        return iter(self.events())

    def _materialize(self, index: int) -> FloorEvent:
        code = self._kinds[index]
        time = self._times[index]
        member = self.member_names[self._members[index]]
        group = self.group_names[self._groups[index]]
        a = self._aux_a[index]
        b = self._aux_b[index]
        mode = self.mode_value
        if code == K_REQUEST:
            return FloorEvent(time, EventKind.REQUEST, member, group, mode,
                              data={"mode": mode})
        if code == K_GRANT:
            return FloorEvent(time, EventKind.GRANT, member, group, mode,
                              data={"reason": None, "mode": mode})
        if code == K_QUEUE:
            reason = f"floor held by {self.member_names[a]!r}"
            data: dict[str, object] = {"reason": reason, "mode": mode}
            if b >= 0:
                data["position"] = b
            return FloorEvent(time, EventKind.QUEUE, member, group, reason, data=data)
        if code == K_JOIN:
            return FloorEvent(time, EventKind.JOIN, member, group)
        if code == K_TOKEN_PASS:
            recipient = self.member_names[a] if a >= 0 else None
            return FloorEvent(time, EventKind.TOKEN_PASS, member, group,
                              recipient or "", data={"to": recipient})
        if code == K_MODE_CHANGE:
            return FloorEvent(time, EventKind.MODE_CHANGE, member, group, mode,
                              data={"from": "free_access", "to": mode})
        if code == K_INVITE:
            invitee = self.member_names[a]
            return FloorEvent(time, EventKind.INVITE, member, group, invitee,
                              data={"invitee": invitee})
        # K_INVITE_RESPONSE — the compiled conventions always accept.
        return FloorEvent(time, EventKind.INVITE_RESPONSE, member, group,
                          "accept", data={"accepted": True})
