"""Drop-in arbitrator for the facade's ``engine="compiled"`` knob.

The full :class:`~repro.api.session.Session` stack cannot swap its
object graph for arrays without changing observable state (clients,
registry, presence all read it), so the compiled facade engine keeps
the reference machinery and compiles the arbitration *batch* path
instead: one resource classification per tick batch rather than one
per request.

This is decision-safe, not an approximation: within one batch of
zero-demand requests nothing the per-mode admission does (token
bookkeeping, queue appends) touches the resource model, so when the
station is ``NORMAL`` with headroom at the start of a batch it stays
so for the whole batch, and every per-request classification the
reference engine performs returns the same answer.  Any batch that
starts degraded — or carries explicit demands — falls back to the
reference path, so transcripts and stats stay byte-identical under
resource pressure too.
"""

from __future__ import annotations

from ..core.arbitrator import _ZERO_DEMAND, Arbitrator
from ..core.floor import FloorGrant, FloorRequest, RequestOutcome
from ..core.resources import ResourceLevel, ResourceVector

__all__ = ["CompiledArbitrator"]


class CompiledArbitrator(Arbitrator):
    """:class:`~repro.core.arbitrator.Arbitrator` with a compiled batch
    fast path (identical decisions, stats and grant objects)."""

    def arbitrate_batch(
        self,
        requests: list[FloorRequest],
        demands: list[ResourceVector | None] | None = None,
        now: float = 0.0,
    ) -> list[FloorGrant]:
        """Decide a tick's batch with one shared resource classification.

        Falls back to the reference per-request path whenever the fast
        preconditions do not hold (explicit demands, a degraded or
        exhausted station, or a membership failure inside the batch).
        """
        if demands is not None or not requests:
            return super().arbitrate_batch(requests, demands, now=now)
        if self.resources.level() is not ResourceLevel.NORMAL:
            return super().arbitrate_batch(requests, now=now)
        if self.resources.headroom_above_minimal(_ZERO_DEMAND) < 0:
            return super().arbitrate_batch(requests, now=now)
        grants: list[FloorGrant] = []
        stats = self.stats
        by_id = {group.group_id: group for group in self.registry.groups()}
        for request in requests:
            group = by_id.get(request.group)
            if group is None or request.member not in group:
                # Rare: replay the reference guard for its exact reason
                # string (and any stats/denial bookkeeping).
                grants.append(self.arbitrate(request, now=now))
                continue
            grant = self._admit_by_mode(request, now, ())
            if grant.outcome is RequestOutcome.GRANTED:
                stats.granted += 1
            elif grant.outcome is RequestOutcome.QUEUED:
                stats.queued += 1
            else:
                stats.denied += 1
            grants.append(grant)
        return grants
