"""``repro.engine`` — the array-compiled simulation core.

Every entry point in the codebase can run its floor-control simulation
on one of two engines:

* ``"reference"`` — the paper-shaped object graph (:mod:`repro.core`,
  :mod:`repro.api.policies`): registries, resource vectors, token and
  grant dataclasses, frozen events.  Maximally inspectable; the
  semantic ground truth.
* ``"compiled"`` — this package: the same decisions over interned
  member ids, integer queues and columnar event storage
  (:mod:`repro.engine.log`), materializing events only when a
  transcript is read.  ≥5x the reference engine's steps/sec on the
  arbitration-scaling workload (bench E16 pins the floor).

The two are interchangeable by contract, not by convention: for any
operation sequence the compiled policies return the same decisions,
expose the same ``speakers()``/``waiting()`` views, fold the same
arbitration counters, and materialize *byte-identical* transcripts
(``repro replay`` verifies the canonical JSON, and bench E16 re-checks
it for all four FCM modes plus both baselines on every run).

The seam is threaded everywhere a simulation starts: ``engine=`` on
:class:`~repro.api.config.SessionConfig` / ``SessionBuilder.engine()``
(the facade swaps in :class:`CompiledArbitrator`), the ``engine``
sweep parameter of the session/policy cell runners, the fleet's
``FleetConfig.engine`` / ``repro fleet --engine compiled``, and
:func:`make_engine_policy` for direct policy construction.  The knob
is an *execution* parameter: it is excluded from seed derivation
(:data:`repro.experiments.spec.EXECUTION_PARAMS`), so switching
engines never changes the simulated workload.
"""

from __future__ import annotations

from ..errors import ReproError
from .arbitrator import CompiledArbitrator
from .compiled import (
    CompiledEngine,
    CompiledFIFO,
    CompiledFreeForAll,
    compile_policy,
    compiled_policy_names,
)
from .log import ColumnarLog

__all__ = [
    "ENGINES",
    "ColumnarLog",
    "CompiledArbitrator",
    "CompiledEngine",
    "CompiledFIFO",
    "CompiledFreeForAll",
    "compile_policy",
    "compiled_policy_names",
    "make_engine_policy",
]

#: The two policy engines the seam selects between.
ENGINES = ("reference", "compiled")


def make_engine_policy(name: str, engine: str = "reference", **kwargs):
    """Instantiate floor policy ``name`` on the selected engine.

    ``engine="reference"`` defers to the open policy registry
    (:func:`repro.api.policies.make_policy`); ``engine="compiled"``
    builds the array-compiled counterpart (:func:`compile_policy`,
    closed set: the four FCM modes plus the two baselines).  Keyword
    arguments pass through to the policy factory either way.

    Raises
    ------
    ReproError
        For an unknown engine or policy name.
    """
    if engine == "reference":
        from ..api.policies import make_policy

        return make_policy(name, **kwargs)
    if engine == "compiled":
        return compile_policy(name, **kwargs)
    raise ReproError(
        f"unknown policy engine {engine!r}; one of {list(ENGINES)}"
    )
