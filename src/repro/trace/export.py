"""Chrome trace-event export: open a trace in Perfetto/about:tracing.

:func:`chrome_trace` converts a trace document (causal spans plus an
optional timing-plane profile) into the Chrome trace-event JSON object
format — the ``{"traceEvents": [...]}`` shape ``chrome://tracing`` and
https://ui.perfetto.dev load directly:

* closed causal spans become complete events (``"ph": "X"``) with
  microsecond ``ts``/``dur`` on the virtual-clock timeline;
* open spans and instant spans (violations) become instant events
  (``"ph": "i"``);
* each member (and each group-scoped lane like mode windows) gets a
  stable ``tid``, named via ``thread_name`` metadata events, so the
  viewer shows one swimlane per member;
* retained timing-plane entries, when present, land on a separate
  ``pid`` so wall-clock profiling never visually mixes with
  virtual-clock causality.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from .spans import Span

__all__ = ["chrome_trace"]

#: ``pid`` of the causal (virtual-clock) plane in the export.
CAUSAL_PID = 1
#: ``pid`` of the timing (wall-clock) plane in the export.
TIMING_PID = 2


def _lane(record: Mapping[str, Any]) -> str:
    member = record.get("member") or ""
    group = record.get("group") or ""
    return f"{member}@{group}" if member else f"[{group or 'session'}]"


def chrome_trace(
    spans: Iterable[Span | Mapping[str, Any]],
    profile_entries: Iterable[tuple[str, float, float, int]] = (),
) -> dict[str, Any]:
    """Build the Chrome trace-event JSON object (see module docs)."""
    records = [
        span.to_dict() if isinstance(span, Span) else dict(span)
        for span in spans
    ]
    lanes = sorted({_lane(record) for record in records})
    tids = {lane: index + 1 for index, lane in enumerate(lanes)}
    events: list[dict[str, Any]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": CAUSAL_PID,
            "tid": tid,
            "args": {"name": lane},
        }
        for lane, tid in tids.items()
    ]
    for record in records:
        tid = tids[_lane(record)]
        start_us = float(record.get("start", 0.0)) * 1e6
        end = record.get("end")
        args = {
            "span_id": record.get("span_id", ""),
            **dict(record.get("attrs") or {}),
        }
        if end is None or float(end) == float(record.get("start", 0.0)):
            events.append({
                "name": record.get("name", "span"),
                "ph": "i",
                "ts": start_us,
                "pid": CAUSAL_PID,
                "tid": tid,
                "s": "t",
                "args": args,
            })
        else:
            events.append({
                "name": record.get("name", "span"),
                "ph": "X",
                "ts": start_us,
                "dur": (float(end) - float(record.get("start", 0.0))) * 1e6,
                "pid": CAUSAL_PID,
                "tid": tid,
                "args": args,
            })
    profile_entries = list(profile_entries)
    if profile_entries:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": TIMING_PID,
            "tid": 0,
            "args": {"name": "timing plane (wall clock)"},
        })
        for name, start, dur, depth in profile_entries:
            events.append({
                "name": name,
                "ph": "X",
                "ts": float(start) * 1e6,
                "dur": float(dur) * 1e6,
                "pid": TIMING_PID,
                "tid": int(depth) + 1,
                "args": {},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}
