"""Causal-plane spans: deterministic, seed-stable trace records.

A :class:`Span` is one causally delimited window on the session's
virtual clock — a member's wait for the floor, a floor hold, a mode
window, an offline interval, or an instantaneous check violation.
Spans carry **stable ids**: :func:`span_id` hashes ``(seed, kind,
group, member, sequence)``, so the same seeded run always produces the
same ids, in serial or sharded execution, and two traces can be
diffed id-by-id.  Nothing in this module reads a wall clock.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Span", "span_id"]


def span_id(seed: int, key: str, seq: int) -> str:
    """Stable 16-hex-digit id for the ``seq``-th span of ``key``.

    ``key`` is the span's identity path (``name|group|member``); the
    seed binds ids to the seeded run so traces of different seeds
    never collide silently.
    """
    digest = hashlib.sha256(f"{seed}|{key}|{seq}".encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class Span:
    """One causal window (see module docs).

    ``end is None`` marks a span still open when tracing stopped —
    kept open deliberately (closing at "now" would make the bytes
    depend on when the tracer was read).  Instant spans (violations)
    have ``end == start``.
    """

    span_id: str
    name: str
    member: str
    group: str
    start: float
    end: float | None
    seq: int
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        """Seconds of virtual time, or ``None`` while open."""
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, canonical-JSON ready (sorted at dump)."""
        return {
            "span_id": self.span_id,
            "name": self.name,
            "member": self.member,
            "group": self.group,
            "start": self.start,
            "end": self.end,
            "seq": self.seq,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict` (loader side)."""
        return cls(
            span_id=str(data["span_id"]),
            name=str(data["name"]),
            member=str(data["member"]),
            group=str(data["group"]),
            start=float(data["start"]),
            end=None if data.get("end") is None else float(data["end"]),
            seq=int(data["seq"]),
            attrs=dict(data.get("attrs") or {}),
        )
