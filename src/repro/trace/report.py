"""Text reports over traces: ``repro trace top`` and trace diffing.

:func:`top_report` renders a timing-plane profile as a self-time
table (the layer where the wall clock actually went, not just who was
on the stack); :func:`causal_summary` does the deterministic
equivalent over causal spans (per-kind counts and virtual-time
totals); :func:`diff_traces` compares two causal documents span by
stable id and returns human-readable difference lines — an empty list
is the byte-identity verdict ``repro trace diff`` exits 0 on.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from .spans import Span

__all__ = ["causal_summary", "diff_traces", "top_report"]


def top_report(
    profile: Mapping[str, Mapping[str, float]], limit: int = 20
) -> str:
    """Self-time table over timing-plane aggregates, hottest first."""
    if not profile:
        return "no timing-plane data (profiling was not enabled)"
    rows = sorted(
        profile.items(), key=lambda item: -float(item[1].get("self", 0.0))
    )[:limit]
    width = max(len(name) for name, __ in rows)
    lines = [
        f"{'layer':<{width}}  {'calls':>8}  {'self_ms':>10}  {'total_ms':>10}"
    ]
    for name, counters in rows:
        lines.append(
            f"{name:<{width}}  {int(counters.get('calls', 0)):>8}  "
            f"{float(counters.get('self', 0.0)) * 1e3:>10.3f}  "
            f"{float(counters.get('total', 0.0)) * 1e3:>10.3f}"
        )
    return "\n".join(lines)


def causal_summary(spans: Iterable[Span | Mapping[str, Any]]) -> str:
    """Per-kind counts + virtual-time totals over causal spans."""
    totals: dict[str, list[float]] = {}
    for span in spans:
        record = span.to_dict() if isinstance(span, Span) else dict(span)
        slot = totals.setdefault(record["name"], [0.0, 0.0, 0.0])
        slot[0] += 1.0
        end = record.get("end")
        if end is None:
            slot[2] += 1.0
        else:
            slot[1] += float(end) - float(record.get("start", 0.0))
    if not totals:
        return "empty trace (no causal spans)"
    width = max(len(name) for name in totals)
    lines = [
        f"{'span':<{width}}  {'count':>8}  {'virtual_s':>10}  {'open':>5}"
    ]
    for name in sorted(totals):
        count, seconds, open_count = totals[name]
        lines.append(
            f"{name:<{width}}  {int(count):>8}  {seconds:>10.3f}  "
            f"{int(open_count):>5}"
        )
    return "\n".join(lines)


def _by_id(spans: Iterable[Span | Mapping[str, Any]]) -> dict[str, dict]:
    out: dict[str, dict] = {}
    for span in spans:
        record = span.to_dict() if isinstance(span, Span) else dict(span)
        out[record["span_id"]] = record
    return out


def diff_traces(
    a: Iterable[Span | Mapping[str, Any]],
    b: Iterable[Span | Mapping[str, Any]],
    limit: int = 50,
) -> list[str]:
    """Span-by-span comparison; ``[]`` means the traces agree."""
    left, right = _by_id(a), _by_id(b)
    lines: list[str] = []
    for span_id in sorted(left.keys() - right.keys()):
        record = left[span_id]
        lines.append(f"- only in A: {record['name']} {span_id} "
                     f"({record['member']}@{record['group']})")
    for span_id in sorted(right.keys() - left.keys()):
        record = right[span_id]
        lines.append(f"- only in B: {record['name']} {span_id} "
                     f"({record['member']}@{record['group']})")
    for span_id in sorted(left.keys() & right.keys()):
        one, two = left[span_id], right[span_id]
        if one != two:
            fields = sorted(
                key for key in set(one) | set(two)
                if one.get(key) != two.get(key)
            )
            lines.append(
                f"- span {span_id} ({one['name']}) differs in: "
                + ", ".join(fields)
            )
    return lines[:limit]
