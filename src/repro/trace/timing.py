"""The timing plane: opt-in wall-clock profiling of the hot seams.

Everything in this module is **non-deterministic by design** — it
measures ``time.perf_counter`` durations around the layers the fleet
spends its wall-clock in (arbitration batches, engine steps, bus
dispatch, metrics folds, shard merges).  It therefore lives on the
opposite side of a hard wall from :mod:`repro.trace.causal`: timing
data never feeds seeding (the ``trace``/``profile`` execution knobs
follow the ``EXECUTION_PARAMS`` convention), never lands in a causal
``TRACE_*.json`` unless explicitly requested, and never perturbs
seeded state — hook sites check :func:`active` for ``None`` before
doing any work, so the cost when profiling is off is one global read.

Usage::

    from repro.trace import timing

    profiler = timing.Profiler()
    with timing.activate(profiler):
        run_fleet(config)
    print(profiler.aggregates()["arbitrate.batch"]["total"])

:class:`Profiler` keeps two views of the same spans:

* **aggregates** — per-name call counts, total seconds, and self
  seconds (total minus time spent in nested profiled spans), the
  input to ``repro trace top``;
* **entries** — a bounded list of raw ``(name, start, dur, depth)``
  records for Chrome trace-event export, capped at
  :data:`MAX_ENTRIES` so long fleet runs cannot grow without bound
  (aggregates keep counting after the cap).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "MAX_ENTRIES",
    "Profiler",
    "activate",
    "active",
]

#: Raw span records retained per profiler for Chrome export; aggregate
#: counters are unaffected by this cap.
MAX_ENTRIES = 50_000

#: The process-wide active profiler (or None).  Hook sites in the hot
#: paths read this once per call; a plain module global keeps the
#: off-path cost to a single load + identity check.
_ACTIVE: "Profiler | None" = None


class Profiler:
    """Aggregating wall-clock span collector (see module docs)."""

    __slots__ = ("_agg", "_entries", "_stack", "_origin")

    def __init__(self) -> None:
        self._agg: dict[str, dict[str, float]] = {}
        self._entries: list[tuple[str, float, float, int]] = []
        self._stack: list[list[float]] = []
        self._origin = time.perf_counter()

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time one region; nested spans subtract from self-time."""
        frame = [0.0]  # seconds consumed by nested spans
        self._stack.append(frame)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._stack.pop()
            depth = len(self._stack)
            if self._stack:
                self._stack[-1][0] += elapsed
            self._record(name, elapsed, elapsed - frame[0])
            if len(self._entries) < MAX_ENTRIES:
                self._entries.append(
                    (name, start - self._origin, elapsed, depth)
                )

    def add(self, name: str, seconds: float) -> None:
        """Fold an externally measured flat duration into a name."""
        self._record(name, seconds, seconds)

    def _record(self, name: str, total: float, self_seconds: float) -> None:
        slot = self._agg.get(name)
        if slot is None:
            slot = {"calls": 0.0, "total": 0.0, "self": 0.0}
            self._agg[name] = slot
        slot["calls"] += 1.0
        slot["total"] += total
        slot["self"] += self_seconds

    def merge(self, other: "Profiler | dict[str, dict[str, float]]") -> None:
        """Fold another profiler's aggregates in (shard → fleet)."""
        agg = other.aggregates() if isinstance(other, Profiler) else other
        for name, counters in agg.items():
            slot = self._agg.setdefault(
                name, {"calls": 0.0, "total": 0.0, "self": 0.0}
            )
            for key in ("calls", "total", "self"):
                slot[key] += float(counters.get(key, 0.0))

    def aggregates(self) -> dict[str, dict[str, float]]:
        """``{name: {calls, total, self}}`` — a plain-dict copy,
        pickle- and JSON-friendly (shard workers return this)."""
        return {name: dict(slot) for name, slot in self._agg.items()}

    def entries(self) -> list[tuple[str, float, float, int]]:
        """Raw retained ``(name, start, dur, depth)`` span records."""
        return list(self._entries)

    def __bool__(self) -> bool:  # truthiness == "has data"
        return bool(self._agg)


@contextmanager
def activate(profiler: Profiler) -> Iterator[Profiler]:
    """Install ``profiler`` as the process-wide active profiler for
    the duration of the ``with`` block (restores the prior one)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler
    try:
        yield profiler
    finally:
        _ACTIVE = previous


def active() -> Profiler | None:
    """The currently installed profiler, or ``None`` (the hot-path
    check: ``if timing.active() is not None``)."""
    return _ACTIVE


def maybe_span(name: str) -> Any:
    """A span on the active profiler, or a no-op context manager.

    Hook sites that cannot afford even a context-manager allocation
    when idle should branch on :func:`active` themselves; this helper
    is for the warm-but-not-hot seams (fold, merge, shard summary).
    """
    profiler = _ACTIVE
    if profiler is None:
        return _NOOP
    return profiler.span(name)


class _NoopSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NOOP = _NoopSpan()
