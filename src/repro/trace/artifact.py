"""Persisted traces: schema-versioned ``TRACE_*.json`` documents.

One trace serializes to one JSON document —

.. code-block:: json

    {
      "schema": "repro-dmps/trace",
      "schema_version": 1,
      "meta": {"seed": 0},
      "spans": [
        {"span_id": "...", "name": "floor.wait", "member": "alice",
         "group": "session", "start": 0.1, "end": 0.4, "seq": 0,
         "attrs": {"outcome": "granted"}}
      ]
    }

— with sorted keys and spans in a canonical total order (``start``
time, then the span's canonical JSON bytes), so the file depends only
on the spans and metadata, never on production order.  That is the
byte-identity guarantee the serial-vs-sharded fleet test pins: shards
emit spans in whatever completion order, the document sorts them into
one order.

A ``profile`` block (timing-plane aggregates) is **opt-in** — causal
documents omit the key entirely, mirroring the fleet persistence
``include_timing`` convention, so deterministic bytes never carry
wall-clock numbers by accident.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..errors import ReproError
from ..events.transcript import canonical_json
from .spans import Span

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "TraceDocument",
    "dumps_trace",
    "load_trace",
    "save_trace",
    "to_document",
    "trace_filename",
]

#: Document family tag every trace file carries.
SCHEMA = "repro-dmps/trace"
#: Bump on any incompatible change to the document layout.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TraceDocument:
    """A loaded trace: metadata, spans, optional timing profile."""

    meta: Mapping[str, Any]
    spans: tuple[Span, ...]
    profile: Mapping[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.spans)


def _span_dicts(spans: Iterable[Span | Mapping[str, Any]]) -> list[dict]:
    out = []
    for span in spans:
        out.append(span.to_dict() if isinstance(span, Span) else dict(span))
    return out


def to_document(
    spans: Iterable[Span | Mapping[str, Any]],
    meta: Mapping[str, Any] | None = None,
    profile: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The trace as a plain JSON-ready document (see module docs).

    Spans sort by ``(start, canonical bytes)`` — a total order over
    well-formed spans, independent of how they were produced.
    """
    records = sorted(
        _span_dicts(spans),
        key=lambda d: (float(d.get("start", 0.0)), canonical_json(d)),
    )
    document: dict[str, Any] = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "meta": dict(meta) if meta else {},
        "spans": records,
    }
    if profile:
        document["profile"] = dict(profile)
    return document


def dumps_trace(
    spans: Iterable[Span | Mapping[str, Any]],
    meta: Mapping[str, Any] | None = None,
    profile: Mapping[str, Any] | None = None,
) -> str:
    """Serialize to the canonical document bytes (sorted keys,
    2-space indent, trailing newline — the BENCH house style)."""
    document = to_document(spans, meta=meta, profile=profile)
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def save_trace(
    path: str | Path,
    spans: Iterable[Span | Mapping[str, Any]],
    meta: Mapping[str, Any] | None = None,
    profile: Mapping[str, Any] | None = None,
) -> Path:
    """Write one ``TRACE_*.json``; returns the resolved path."""
    path = Path(path)
    path.write_text(dumps_trace(spans, meta=meta, profile=profile), "utf-8")
    return path


def load_trace(path: str | Path) -> TraceDocument:
    """Load and validate a ``TRACE_*.json`` document."""
    path = Path(path)
    try:
        raw = json.loads(path.read_text("utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot load trace {path}: {exc}") from exc
    if not isinstance(raw, dict):
        raise ReproError(f"trace {path}: document is not a JSON object")
    if raw.get("schema") != SCHEMA:
        raise ReproError(
            f"trace {path}: schema {raw.get('schema')!r} is not {SCHEMA!r}"
        )
    if raw.get("schema_version") != SCHEMA_VERSION:
        raise ReproError(
            f"trace {path}: schema_version {raw.get('schema_version')!r} "
            f"is not {SCHEMA_VERSION}"
        )
    records = raw.get("spans")
    if not isinstance(records, list):
        raise ReproError(f"trace {path}: missing spans list")
    try:
        spans = tuple(Span.from_dict(record) for record in records)
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"trace {path}: malformed span: {exc}") from exc
    return TraceDocument(
        meta=dict(raw.get("meta") or {}),
        spans=spans,
        profile=dict(raw.get("profile") or {}),
    )


def trace_filename(name: str) -> str:
    """Canonical ``TRACE_<name>.json`` filename for a run name."""
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_") or "trace"
    return f"TRACE_{safe}.json"
