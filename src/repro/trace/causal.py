"""The causal plane: spans derived from virtual-clock event causality.

:class:`CausalTracer` folds a floor-control event stream into
:class:`~repro.trace.spans.Span` windows, pairing openers with closers
the same way :class:`~repro.metrics.fold.MetricsFold` pairs requests
with services — per-member pending deques, one pass, O(members +
outstanding) state.  Everything here is a pure function of the event
stream plus the session seed: no wall clock, no iteration-order
dependence, so the serialized trace of a seeded run is byte-identical
however (and wherever) the run executed.

Span kinds produced:

``floor.wait``
    ``REQUEST`` → the ``GRANT``/``TOKEN_PASS`` that served that
    member (``MetricsFold`` pairing), or the ``DENY``/``ABORT`` that
    refused it; ``attrs.outcome`` says which.  A ``QUEUE`` outcome
    marks the wait ``attrs.queued`` and leaves it open for the later
    grant.
``floor.hold``
    a member holds the floor: ``GRANT`` / ``TOKEN_PASS``-to opens,
    the group's next hand-off (or the holder leaving) closes.
``mode.window``
    one FCM mode's reign over a group: ``MODE_CHANGE`` to
    ``MODE_CHANGE``, ``attrs.mode``.
``member.offline``
    ``DISCONNECT`` → ``RECONNECT`` per member (partition windows ride
    on these, the net layer emits per-member disconnects).
``check.violation``
    instant span (``end == start``) per monitor violation, via
    :meth:`CausalTracer.add_violations`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Mapping

from ..events.types import EventKind, FloorEvent
from .spans import Span, span_id

__all__ = ["CausalTracer"]

#: Outcome event kinds that close (or annotate) a ``floor.wait``.
_REFUSALS = {EventKind.DENY: "denied", EventKind.ABORT: "aborted"}


class CausalTracer:
    """Fold events into causal spans (see module docs).

    ``seed`` binds the stable span ids to the seeded run;
    ``base_attrs`` is stamped onto every span (the fleet uses it to
    tag each session's lane).
    """

    def __init__(
        self,
        seed: int = 0,
        base_attrs: Mapping[str, Any] | None = None,
    ) -> None:
        self.seed = seed
        self.base_attrs = dict(base_attrs or {})
        self._spans: list[Span] = []
        self._seq: dict[str, int] = {}
        # Open state, all keyed on virtual-clock causality:
        self._waits: dict[tuple[str, str], deque[list[Any]]] = {}
        self._holds: dict[str, list[Any]] = {}  # group -> open hold
        self._modes: dict[str, list[Any]] = {}  # group -> open window
        self._offline: dict[str, float] = {}  # member -> since

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls,
        events: Iterable[FloorEvent],
        seed: int = 0,
        base_attrs: Mapping[str, Any] | None = None,
    ) -> "CausalTracer":
        """Trace a finished stream (a transcript, a bus snapshot)."""
        tracer = cls(seed=seed, base_attrs=base_attrs)
        for event in events:
            tracer.add(event)
        return tracer

    def attach(self, bus: Any):
        """Subscribe to a live :class:`~repro.events.bus.EventBus`;
        returns the unsubscribe callable."""
        return bus.subscribe(self.add)

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def add(self, event: FloorEvent) -> None:
        """Fold one event in (a valid ``EventBus.subscribe`` listener)."""
        kind = event.kind
        if kind is EventKind.REQUEST:
            self._open_wait(event)
        elif kind is EventKind.GRANT:
            self._close_wait(event.member, event, "granted")
            self._open_hold(event.group, event.member, event.time, "grant")
        elif kind is EventKind.TOKEN_PASS:
            payload = event.payload()
            recipient = payload.to_member if payload is not None else None
            self._close_hold(event.group, event.time, "token_pass")
            if recipient:
                self._close_wait(recipient, event, "granted")
                self._open_hold(event.group, recipient, event.time, "token")
        elif kind in _REFUSALS:
            self._close_wait(event.member, event, _REFUSALS[kind])
        elif kind is EventKind.QUEUE:
            self._mark_queued(event)
        elif kind is EventKind.MODE_CHANGE:
            self._mode_window(event)
        elif kind is EventKind.DISCONNECT:
            self._offline.setdefault(event.member, event.time)
        elif kind is EventKind.RECONNECT:
            since = self._offline.pop(event.member, None)
            if since is not None:
                self._emit(
                    "member.offline", event.member, event.group,
                    since, event.time,
                )
        elif kind is EventKind.LEAVE:
            hold = self._holds.get(event.group)
            if hold is not None and hold[0] == event.member:
                self._close_hold(event.group, event.time, "leave")

    def add_violations(self, violations: Iterable[Any], group: str = "") -> None:
        """Fold monitor violations in as instant ``check.violation``
        spans (each needs ``.time``, ``.invariant``, ``.detail``)."""
        for violation in violations:
            when = float(getattr(violation, "time", 0.0))
            self._emit(
                "check.violation",
                str(getattr(violation, "invariant", "")),
                group,
                when,
                when,
                attrs={"detail": str(getattr(violation, "detail", ""))},
            )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        """Every span so far — closed ones plus the still-open state,
        in a deterministic order (see :mod:`repro.trace.artifact` for
        the canonical serialization order).  Reading does not consume:
        calling twice yields identical spans and ids."""
        out = list(self._spans)
        counters = dict(self._seq)
        for (member, group), waits in self._waits.items():
            for wait in waits:
                out.append(self._make_span(
                    "floor.wait", member, group, wait[0], None,
                    attrs=dict(wait[1]), counters=counters,
                ))
        for group, hold in self._holds.items():
            out.append(self._make_span(
                "floor.hold", hold[0], group, hold[1], None,
                attrs={"via": hold[2]}, counters=counters,
            ))
        for group, window in self._modes.items():
            out.append(self._make_span(
                "mode.window", "", group, window[0], None,
                attrs={"mode": window[1]}, counters=counters,
            ))
        for member, since in self._offline.items():
            out.append(self._make_span(
                "member.offline", member, "", since, None,
                counters=counters,
            ))
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _open_wait(self, event: FloorEvent) -> None:
        key = (event.member, event.group)
        queue = self._waits.get(key)
        if queue is None:
            queue = self._waits[key] = deque()
        queue.append([event.time, {}])

    def _mark_queued(self, event: FloorEvent) -> None:
        queue = self._waits.get((event.member, event.group))
        if queue:
            queue[-1][1]["queued"] = True

    def _close_wait(self, member: str, event: FloorEvent, outcome: str) -> None:
        queue = self._waits.get((member, event.group))
        if not queue:
            return
        start, attrs = queue.popleft()
        attrs = dict(attrs)
        attrs["outcome"] = outcome
        self._emit("floor.wait", member, event.group, start, event.time,
                   attrs=attrs)

    def _open_hold(self, group: str, member: str, when: float, via: str) -> None:
        self._close_hold(group, when, "handoff")
        self._holds[group] = [member, when, via]

    def _close_hold(self, group: str, when: float, how: str) -> None:
        hold = self._holds.pop(group, None)
        if hold is not None:
            self._emit(
                "floor.hold", hold[0], group, hold[1], when,
                attrs={"via": hold[2], "closed_by": how},
            )

    def _mode_window(self, event: FloorEvent) -> None:
        payload = event.payload()
        to_mode = getattr(payload, "to_mode", None) or event.detail
        window = self._modes.pop(event.group, None)
        if window is not None:
            self._emit(
                "mode.window", "", event.group, window[0], event.time,
                attrs={"mode": window[1]},
            )
        self._modes[event.group] = [event.time, str(to_mode)]

    def _emit(
        self,
        name: str,
        member: str,
        group: str,
        start: float,
        end: float | None,
        attrs: Mapping[str, Any] | None = None,
    ) -> None:
        self._spans.append(
            self._make_span(name, member, group, start, end, attrs)
        )

    def _make_span(
        self,
        name: str,
        member: str,
        group: str,
        start: float,
        end: float | None,
        attrs: Mapping[str, Any] | None = None,
        counters: dict[str, int] | None = None,
    ) -> Span:
        key = f"{name}|{group}|{member}"
        seq_map = self._seq if counters is None else counters
        seq = seq_map.get(key, 0)
        seq_map[key] = seq + 1
        merged = dict(self.base_attrs)
        if attrs:
            merged.update(attrs)
        return Span(
            span_id=span_id(self.seed, key, seq),
            name=name,
            member=member,
            group=group,
            start=start,
            end=end,
            seq=seq,
            attrs=merged,
        )
