"""repro.trace — deterministic span tracing + opt-in wall profiling.

Two strictly separated planes (see :doc:`docs/OBSERVABILITY.md`):

* the **causal plane** (:mod:`~repro.trace.causal`) derives spans from
  virtual-clock event causality — deterministic, seed-stable,
  persisted as schema-versioned ``TRACE_*.json`` byte-identically
  across serial and sharded execution;
* the **timing plane** (:mod:`~repro.trace.timing`) measures
  wall-clock self-time per layer — opt-in, excluded from seeding,
  exported to Chrome trace-event JSON for Perfetto.
"""

from .artifact import (
    SCHEMA,
    SCHEMA_VERSION,
    TraceDocument,
    dumps_trace,
    load_trace,
    save_trace,
    to_document,
    trace_filename,
)
from .causal import CausalTracer
from .export import chrome_trace
from .report import causal_summary, diff_traces, top_report
from .spans import Span, span_id
from .timing import Profiler, activate, active

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "CausalTracer",
    "Profiler",
    "Span",
    "TraceDocument",
    "activate",
    "active",
    "causal_summary",
    "chrome_trace",
    "diff_traces",
    "dumps_trace",
    "load_trace",
    "save_trace",
    "span_id",
    "to_document",
    "top_report",
    "trace_filename",
]
