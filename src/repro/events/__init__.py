"""repro.events — the typed, indexed, replayable event subsystem.

Every arbitration decision, token hand-off, membership change and mode
switch a session makes flows through one :class:`EventBus`:

* **Typed events** (:mod:`repro.events.types`) — :class:`FloorEvent`
  stays the wire record, but ``event.payload()`` returns a structured
  dataclass per :class:`EventKind` (grant reason, queue position,
  token recipient, mode-change from/to), ending detail-string parsing;
* **Indexed queries** (:mod:`repro.events.bus`) — per-kind, per-member
  and per-group indexes plus a time-sorted spine make ``of_kind`` /
  ``for_member`` / ``for_group`` O(k), ``count`` O(1) and ``between``
  O(log n + k), with an optional bounded ring mode for long-running
  sessions;
* **Filtered subscriptions** — ``subscribe(fn, kinds=..., groups=...,
  members=...)`` with exception-isolated dispatch and removal by
  identity;
* **Record/replay** (:mod:`repro.events.transcript`,
  :mod:`repro.events.replay`) — schema-versioned JSONL transcripts
  (``EventBus.save`` / ``EventBus.load``) whose recorded metrics and
  check verdicts the ``repro replay`` CLI verb reproduces
  byte-identically from the persisted events alone.

The seed-era ``EventLog`` remains available from
:mod:`repro.core.events` as a thin alias of :class:`EventBus`, so
existing call sites keep working unchanged.
"""

from .bus import EventBus, ListenerError, Subscription
from .replay import (
    ReplayReport,
    TranscriptState,
    TranscriptViolation,
    build_meta,
    check_transcript,
    replay_transcript,
    transcript_check_names,
    transcript_metrics,
)
from .transcript import (
    SCHEMA,
    SCHEMA_VERSION,
    TranscriptDocument,
    canonical_json,
    dumps_transcript,
    load_transcript,
    save_transcript,
    transcript_filename,
)
from .types import (
    EventKind,
    EventPayload,
    FloorEvent,
    InvitePayload,
    InviteResponsePayload,
    ModeChangePayload,
    OutcomePayload,
    RequestPayload,
    TokenPassPayload,
)

__all__ = [
    "EventBus",
    "EventKind",
    "EventPayload",
    "FloorEvent",
    "InvitePayload",
    "InviteResponsePayload",
    "ListenerError",
    "ModeChangePayload",
    "OutcomePayload",
    "ReplayReport",
    "RequestPayload",
    "SCHEMA",
    "SCHEMA_VERSION",
    "Subscription",
    "TokenPassPayload",
    "TranscriptDocument",
    "TranscriptState",
    "TranscriptViolation",
    "build_meta",
    "canonical_json",
    "check_transcript",
    "dumps_transcript",
    "load_transcript",
    "replay_transcript",
    "save_transcript",
    "transcript_check_names",
    "transcript_filename",
    "transcript_metrics",
]
