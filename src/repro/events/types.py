"""Typed floor-control events: the wire record and its payloads.

:class:`FloorEvent` stays the compact wire record every layer already
logs (time, kind, member, group, free-text ``detail``), but it now
carries an optional structured ``data`` mapping and a :meth:`~
FloorEvent.payload` accessor that returns a *typed payload dataclass*
per :class:`EventKind` — the grant reason, the queue position, the
token recipient, the mode-change from/to pair — so consumers stop
parsing detail strings.  ``to_dict``/``from_dict`` round-trip an event
losslessly, which is what transcript persistence
(:mod:`repro.events.transcript`) is built on.

Events produced by older code (or hand-built test logs) carry no
``data``; ``payload()`` then falls back to parsing the legacy detail
string, so both generations of transcript remain queryable through the
same typed surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from types import MappingProxyType
from typing import Any, Mapping

from ..errors import EventBusError

__all__ = [
    "EventKind",
    "FloorEvent",
    "EventPayload",
    "RequestPayload",
    "OutcomePayload",
    "TokenPassPayload",
    "ModeChangePayload",
    "InvitePayload",
    "InviteResponsePayload",
]


class EventKind(Enum):
    """Every kind of entry a session transcript can contain."""

    REQUEST = "request"
    GRANT = "grant"
    QUEUE = "queue"
    DENY = "deny"
    ABORT = "abort"
    TOKEN_PASS = "token_pass"
    SUSPEND = "suspend"
    RESUME = "resume"
    JOIN = "join"
    LEAVE = "leave"
    INVITE = "invite"
    INVITE_RESPONSE = "invite_response"
    MODE_CHANGE = "mode_change"
    DISCONNECT = "disconnect"
    RECONNECT = "reconnect"


@dataclass(frozen=True)
class EventPayload:
    """Base class of every typed event payload."""


@dataclass(frozen=True)
class RequestPayload(EventPayload):
    """A ``REQUEST``: the floor mode the request was made under."""

    mode: str | None = None


@dataclass(frozen=True)
class OutcomePayload(EventPayload):
    """A ``GRANT``/``QUEUE``/``DENY``/``ABORT`` arbitration outcome.

    ``reason`` is the arbitrator's explanation (``None`` when the
    outcome needed none), ``mode`` the floor mode arbitrated under, and
    ``position`` the 1-based wait-queue slot of a ``QUEUE`` outcome.
    """

    reason: str | None = None
    mode: str | None = None
    position: int | None = None


@dataclass(frozen=True)
class TokenPassPayload(EventPayload):
    """A ``TOKEN_PASS``: who received the floor (``None`` = cleared)."""

    to_member: str | None = None


@dataclass(frozen=True)
class ModeChangePayload(EventPayload):
    """A ``MODE_CHANGE``: the group's previous and new floor modes.

    ``from_mode`` is ``None`` on events recorded before the structured
    ``data`` field existed (the legacy detail only named the new mode).
    """

    to_mode: str | None = None
    from_mode: str | None = None


@dataclass(frozen=True)
class InvitePayload(EventPayload):
    """An ``INVITE``: who was invited into the subgroup."""

    invitee: str | None = None


@dataclass(frozen=True)
class InviteResponsePayload(EventPayload):
    """An ``INVITE_RESPONSE``: whether the invitee accepted."""

    accepted: bool = False


def _str_or_none(data: Mapping[str, Any], key: str) -> str | None:
    value = data.get(key)
    return None if value is None else str(value)


@dataclass(frozen=True)
class FloorEvent:
    """One timestamped entry in the session transcript.

    ``detail`` remains the human-readable free-text column the CLI
    prints; ``data`` (optional, immutable) carries the structured
    fields :meth:`payload` exposes as a typed dataclass.
    """

    time: float
    kind: EventKind
    member: str
    group: str
    detail: str = ""
    data: Mapping[str, Any] | None = field(default=None, hash=False)

    def __post_init__(self) -> None:
        if self.data is not None and not isinstance(self.data, MappingProxyType):
            object.__setattr__(self, "data", MappingProxyType(dict(self.data)))

    # ------------------------------------------------------------------
    # Typed payloads
    # ------------------------------------------------------------------
    def payload(self) -> EventPayload | None:
        """The typed payload of this event, or ``None`` for kinds that
        carry no structured fields (join/leave/suspend/resume/...).

        Prefers the structured ``data`` mapping; events recorded before
        it existed are parsed from the legacy ``detail`` string.
        """
        parser = _PAYLOAD_PARSERS.get(self.kind)
        return None if parser is None else parser(self)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict that :meth:`from_dict` restores exactly."""
        record: dict[str, Any] = {
            "time": self.time,
            "kind": self.kind.value,
            "member": self.member,
            "group": self.group,
            "detail": self.detail,
        }
        if self.data is not None:
            record["data"] = dict(self.data)
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "FloorEvent":
        """Rebuild an event from :meth:`to_dict` output.

        Raises
        ------
        EventBusError
            On a malformed record (missing fields, unknown kind, or a
            non-mapping ``data`` block).
        """
        if not isinstance(record, Mapping):
            raise EventBusError(f"event record must be a mapping, got {record!r}")
        missing = [key for key in ("time", "kind", "member", "group") if key not in record]
        if missing:
            raise EventBusError(f"event record is missing fields {missing!r}")
        try:
            kind = EventKind(record["kind"])
        except ValueError:
            raise EventBusError(
                f"unknown event kind {record['kind']!r}"
            ) from None
        data = record.get("data")
        if data is not None and not isinstance(data, Mapping):
            raise EventBusError(
                f"event data must be a mapping, got {data!r}"
            )
        try:
            time = float(record["time"])
        except (TypeError, ValueError):
            raise EventBusError(
                f"event time must be numeric, got {record['time']!r}"
            ) from None
        return cls(
            time=time,
            kind=kind,
            member=str(record["member"]),
            group=str(record["group"]),
            detail=str(record.get("detail", "")),
            data=data,
        )


def _parse_request(event: FloorEvent) -> RequestPayload:
    if event.data is not None:
        return RequestPayload(mode=_str_or_none(event.data, "mode"))
    return RequestPayload(mode=event.detail or None)


def _parse_outcome(event: FloorEvent) -> OutcomePayload:
    if event.data is not None:
        position = event.data.get("position")
        return OutcomePayload(
            reason=_str_or_none(event.data, "reason"),
            mode=_str_or_none(event.data, "mode"),
            position=None if position is None else int(position),
        )
    # Legacy detail holds ``reason or mode.value``; surface it as the
    # reason (the less lossy of the two readings).
    return OutcomePayload(reason=event.detail or None)


def _parse_token_pass(event: FloorEvent) -> TokenPassPayload:
    if event.data is not None:
        return TokenPassPayload(to_member=_str_or_none(event.data, "to"))
    return TokenPassPayload(to_member=event.detail or None)


def _parse_mode_change(event: FloorEvent) -> ModeChangePayload:
    if event.data is not None:
        return ModeChangePayload(
            to_mode=_str_or_none(event.data, "to"),
            from_mode=_str_or_none(event.data, "from"),
        )
    return ModeChangePayload(to_mode=event.detail or None)


def _parse_invite(event: FloorEvent) -> InvitePayload:
    if event.data is not None:
        return InvitePayload(invitee=_str_or_none(event.data, "invitee"))
    return InvitePayload(invitee=event.detail or None)


def _parse_invite_response(event: FloorEvent) -> InviteResponsePayload:
    if event.data is not None:
        return InviteResponsePayload(accepted=bool(event.data.get("accepted")))
    return InviteResponsePayload(accepted=event.detail == "accept")


_PAYLOAD_PARSERS = {
    EventKind.REQUEST: _parse_request,
    EventKind.GRANT: _parse_outcome,
    EventKind.QUEUE: _parse_outcome,
    EventKind.DENY: _parse_outcome,
    EventKind.ABORT: _parse_outcome,
    EventKind.TOKEN_PASS: _parse_token_pass,
    EventKind.MODE_CHANGE: _parse_mode_change,
    EventKind.INVITE: _parse_invite,
    EventKind.INVITE_RESPONSE: _parse_invite_response,
}
