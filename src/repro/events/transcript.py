"""Transcript persistence: schema-versioned JSONL record files.

One saved transcript is a JSON-Lines document — a header line

.. code-block:: json

    {"meta": {...}, "schema": "repro-dmps/transcript", "schema_version": 1}

followed by one canonical JSON line per event
(:meth:`~repro.events.types.FloorEvent.to_dict` order-stable with
sorted keys and compact separators).  The bytes depend only on the
events and metadata, so saving a loaded transcript reproduces the file
exactly — the property ``repro replay`` and the regression tests pin.

JSONL (rather than one JSON array) keeps transcripts streamable and
appendable: a 100k-event session writes line by line, and a partial
file is still inspectable up to the break.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..errors import TranscriptError
from .types import FloorEvent

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "TranscriptDocument",
    "canonical_json",
    "dumps_transcript",
    "load_transcript",
    "save_transcript",
    "transcript_filename",
]

#: Document family tag every transcript header carries.
SCHEMA = "repro-dmps/transcript"
#: Bump on any incompatible change to the line layout.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TranscriptDocument:
    """A loaded transcript: its metadata block plus every event."""

    meta: Mapping[str, Any]
    events: tuple[FloorEvent, ...]

    def __len__(self) -> int:
        return len(self.events)


def canonical_json(value: Any) -> str:
    """The canonical JSON encoding every byte-identity guarantee rests
    on: sorted keys, compact separators.  Transcript lines, recorded
    metadata, and replay comparisons must all go through this one
    function — two encoders drifting apart would break the replay gate
    subtly."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def dumps_transcript(
    events: Iterable[FloorEvent], meta: Mapping[str, Any] | None = None
) -> str:
    """Serialize events (plus optional metadata) to canonical JSONL."""
    header = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "meta": dict(meta) if meta else {},
    }
    lines = [canonical_json(header)]
    lines.extend(canonical_json(event.to_dict()) for event in events)
    return "\n".join(lines) + "\n"


def save_transcript(
    path: str | Path,
    events: Iterable[FloorEvent],
    meta: Mapping[str, Any] | None = None,
) -> Path:
    """Write the canonical JSONL transcript; returns the path written."""
    target = Path(path)
    target.write_text(dumps_transcript(events, meta=meta), encoding="utf-8")
    return target


def load_transcript(path: str | Path) -> TranscriptDocument:
    """Read a saved transcript back, validating schema and every line.

    Raises
    ------
    TranscriptError
        When the file is missing, is not a transcript document, its
        schema version is newer than this code understands, or an
        event line fails to parse (the message names the line).
    """
    source = Path(path)
    try:
        text = source.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        raise TranscriptError(f"{source}: cannot read ({error})") from None
    lines = text.splitlines()
    if not lines:
        raise TranscriptError(f"{source}: empty file, not a transcript")
    header = _parse_line(source, 1, lines[0])
    if not isinstance(header, dict) or header.get("schema") != SCHEMA:
        raise TranscriptError(f"{source}: not a {SCHEMA!r} document")
    version = header.get("schema_version")
    if not isinstance(version, int) or version > SCHEMA_VERSION:
        raise TranscriptError(
            f"{source}: schema version {version!r} is newer than the "
            f"supported {SCHEMA_VERSION}"
        )
    meta = header.get("meta") or {}
    if not isinstance(meta, dict):
        raise TranscriptError(f"{source}: header meta must be an object")
    events = []
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        record = _parse_line(source, number, line)
        try:
            events.append(FloorEvent.from_dict(record))
        except TranscriptError:
            raise
        except Exception as error:
            raise TranscriptError(
                f"{source}:{number}: bad event record ({error})"
            ) from None
    return TranscriptDocument(meta=meta, events=tuple(events))


def _parse_line(source: Path, number: int, line: str) -> Any:
    try:
        return json.loads(line)
    except json.JSONDecodeError as error:
        raise TranscriptError(
            f"{source}:{number}: not valid JSON ({error})"
        ) from None


def transcript_filename(name: str) -> str:
    """Canonical ``TRANSCRIPT_<name>.jsonl`` filename for a run name."""
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_") or "session"
    return f"TRANSCRIPT_{safe}.jsonl"
