"""Deterministic replay: re-check and re-measure a saved transcript.

A transcript saved with metadata built by :func:`build_meta` records,
next to the events themselves, everything the live run concluded from
them: the transcript metrics (grant latencies, fairness, service
counts) and the verdicts of the *transcript checks* — invariants
re-derivable purely from the event stream.  :func:`replay_transcript`
loads such a file, recomputes both from the persisted events, and
compares canonical JSON bytes: a byte-identical match proves the saved
record really is a faithful, self-contained account of the run — no
re-simulation needed to audit a session, diff two transcripts, or
re-check a regression offline (the ``repro replay`` CLI verb).

Transcript checks mirror the live session monitors where the event
stream carries enough state:

* ``holder_is_member`` — a floor holder learned from ``GRANT`` /
  ``TOKEN_PASS`` events must be a joined member at that point;
* ``queue_consistent`` — the wait queue folded from ``QUEUE`` /
  ``GRANT`` / ``TOKEN_PASS`` / ``LEAVE`` events holds no duplicates
  and never the current holder.

Live-state invariants that need the server object (``single_speaker``
reads channel delivery sets) cannot be re-derived from events alone;
their live verdicts ride along in the metadata verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from ..errors import TranscriptError
from .transcript import canonical_json, load_transcript
from .types import EventKind, FloorEvent, TokenPassPayload

__all__ = [
    "ReplayReport",
    "TranscriptState",
    "TranscriptViolation",
    "build_meta",
    "check_transcript",
    "replay_transcript",
    "transcript_check_names",
    "transcript_metrics",
]

#: Event kinds that advance the folded floor state (and therefore
#: re-trigger the transcript checks).
_FOLD_KINDS = frozenset(
    {
        EventKind.JOIN,
        EventKind.LEAVE,
        EventKind.GRANT,
        EventKind.QUEUE,
        EventKind.TOKEN_PASS,
        EventKind.MODE_CHANGE,
    }
)


@dataclass(frozen=True)
class TranscriptViolation:
    """One invariant violation found while folding a transcript."""

    time: float
    invariant: str
    detail: str

    def as_record(self) -> list[Any]:
        """The canonical ``[time, invariant, detail]`` metadata row."""
        return [self.time, self.invariant, self.detail]


@dataclass
class TranscriptState:
    """Floor state folded from an event stream, one event at a time.

    Only state the events themselves carry is tracked: joined members,
    the per-group token holder (learned from grants and passes), the
    per-group wait queue, and the per-group mode.  :meth:`apply` is the
    single fold step; :func:`check_transcript` drives it and evaluates
    the stream invariants after every floor-moving event.
    """

    members: set[str] = field(default_factory=set)
    holders: dict[str, str | None] = field(default_factory=dict)
    queues: dict[str, list[str]] = field(default_factory=dict)
    modes: dict[str, str] = field(default_factory=dict)

    def apply(self, event: FloorEvent) -> bool:
        """Fold one event; returns whether floor state moved."""
        kind = event.kind
        if kind not in _FOLD_KINDS:
            return False
        if kind is EventKind.JOIN:
            self.members.add(event.member)
        elif kind is EventKind.LEAVE:
            self.members.discard(event.member)
            # The server withdraws a leaver from every wait queue.
            for queue in self.queues.values():
                while event.member in queue:
                    queue.remove(event.member)
        elif kind is EventKind.GRANT:
            self.holders[event.group] = event.member
            self._unqueue(event.group, event.member)
        elif kind is EventKind.QUEUE:
            # Mirrors FloorToken.request's idempotency: a queued member
            # re-requesting logs another QUEUE event but occupies one
            # queue slot — folding it twice would fabricate duplicates.
            queue = self.queues.setdefault(event.group, [])
            if event.member not in queue:
                queue.append(event.member)
        elif kind is EventKind.TOKEN_PASS:
            payload = event.payload()
            successor = (
                payload.to_member
                if isinstance(payload, TokenPassPayload)
                else None
            )
            self.holders[event.group] = successor
            if successor is not None:
                self._unqueue(event.group, successor)
        elif kind is EventKind.MODE_CHANGE:
            mode = event.payload().to_mode
            if mode is not None:
                self.modes[event.group] = mode
        return True

    def _unqueue(self, group: str, member: str) -> None:
        queue = self.queues.get(group)
        while queue and member in queue:
            queue.remove(member)


def _check_holder_is_member(state: TranscriptState) -> str | None:
    for group, holder in sorted(state.holders.items()):
        if holder is not None and holder not in state.members:
            return (
                f"channel {group!r}: holder {holder!r} is not a joined member"
            )
    return None


def _check_queue_consistent(state: TranscriptState) -> str | None:
    for group, queue in sorted(state.queues.items()):
        if len(queue) != len(set(queue)):
            return f"channel {group!r} queue has duplicates: {queue}"
        holder = state.holders.get(group)
        if holder is not None and holder in queue:
            return f"channel {group!r}: holder {holder!r} is also queued"
    return None


_TRANSCRIPT_CHECKS = {
    "holder_is_member": _check_holder_is_member,
    "queue_consistent": _check_queue_consistent,
}


def transcript_check_names() -> list[str]:
    """The invariants re-derivable from an event stream, sorted."""
    return sorted(_TRANSCRIPT_CHECKS)


def check_transcript(
    events: Iterable[FloorEvent], names: Sequence[str] | None = None
) -> list[TranscriptViolation]:
    """Fold the events and evaluate the stream invariants at each step.

    Violations are recorded once per failure *episode* (matching the
    live monitor's dedup): an invariant failing identically across
    consecutive checks records once; a changed detail, or a re-failure
    after recovery, records again.

    Raises
    ------
    TranscriptError
        When ``names`` asks for a check that is not stream-derivable.
    """
    selected = list(names) if names is not None else transcript_check_names()
    unknown = sorted(set(selected) - set(_TRANSCRIPT_CHECKS))
    if unknown:
        raise TranscriptError(
            f"unknown transcript checks {unknown!r}; stream-derivable: "
            f"{transcript_check_names()}"
        )
    state = TranscriptState()
    active: dict[str, str] = {}
    violations: list[TranscriptViolation] = []
    for event in events:
        if not state.apply(event):
            continue
        for name in selected:
            detail = _TRANSCRIPT_CHECKS[name](state)
            if detail is None:
                active.pop(name, None)
            elif active.get(name) != detail:
                active[name] = detail
                violations.append(
                    TranscriptViolation(
                        time=event.time, invariant=name, detail=detail
                    )
                )
    return violations


def transcript_metrics(events: Sequence[FloorEvent]) -> dict[str, float]:
    """The deterministic metric block a transcript's metadata records.

    One pass of the shared streaming kernel
    (:class:`repro.metrics.fold.MetricsFold`, exact mode) — the same
    fold live sessions and sweep cells read, so record/replay
    byte-identity is enforced through one implementation.  The roster
    for the fairness index grows from the stream's ``JOIN`` events, so
    the metrics need nothing beyond the transcript itself.
    """
    # Lazy import: repro.events must stay importable on its own.
    from ..metrics.fold import MetricsFold

    fold = MetricsFold(mode="exact")
    for event in events:
        fold.add(event)
    return fold.to_metrics()


def build_meta(
    events: Sequence[FloorEvent],
    monitor=None,
    extra: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """The metadata block a replayable transcript is saved with.

    Bundles the recomputable record — :func:`transcript_metrics` plus
    the :func:`check_transcript` verdicts — with the live monitor's
    summary when one is attached (its invariant names, check count,
    and recorded violations travel verbatim; replay preserves rather
    than recomputes them).  ``extra`` keys are merged in as-is.
    """
    meta: dict[str, Any] = {
        "metrics": transcript_metrics(events),
        "checks": {
            "names": transcript_check_names(),
            "violations": [
                violation.as_record()
                for violation in check_transcript(events)
            ],
        },
    }
    if monitor is not None:
        meta["monitor"] = {
            "invariants": list(monitor.names),
            "checks_run": monitor.checks_run,
            "violations": [
                [v.time, v.invariant, v.detail, v.trigger]
                for v in monitor.violations
            ],
        }
    if extra:
        meta.update(dict(extra))
    return meta


@dataclass(frozen=True)
class ReplayReport:
    """The outcome of replaying one saved transcript.

    ``metrics_match`` / ``checks_match`` compare canonical JSON bytes
    of the recorded and recomputed blocks; :attr:`ok` is their
    conjunction.  A transcript saved without a recorded block (hand
    -built, or from an external tool) replays with that comparison
    vacuously true but flagged in :attr:`missing`.
    """

    path: Path
    events: int
    duration: float
    recorded_metrics: Mapping[str, Any]
    replayed_metrics: Mapping[str, float]
    recorded_violations: tuple[tuple[Any, ...], ...]
    replayed_violations: tuple[TranscriptViolation, ...]
    monitor: Mapping[str, Any]
    missing: tuple[str, ...]
    #: The recorded ``meta.session`` block (chair, members, seed,
    #: listener_errors, ...) — empty for hand-built transcripts.
    session: Mapping[str, Any] = field(default_factory=dict)

    @property
    def listener_errors(self) -> int:
        """Listener exceptions the recorded run isolated during
        dispatch (0 for transcripts without a session block)."""
        return int(self.session.get("listener_errors", 0) or 0)

    @property
    def metrics_match(self) -> bool:
        """Recorded and recomputed metrics agree byte-for-byte."""
        if "metrics" in self.missing:
            return True
        return _canonical_bytes(self.recorded_metrics) == _canonical_bytes(
            self.replayed_metrics
        )

    @property
    def checks_match(self) -> bool:
        """Recorded and recomputed check verdicts agree byte-for-byte."""
        if "checks" in self.missing:
            return True
        replayed = [v.as_record() for v in self.replayed_violations]
        return _canonical_bytes(list(self.recorded_violations)) == (
            _canonical_bytes(replayed)
        )

    @property
    def ok(self) -> bool:
        """Whether the replay reproduced the recorded run."""
        return self.metrics_match and self.checks_match

    def render(self) -> str:
        """Human-readable multi-line replay summary."""
        lines = [
            f"replay {self.path.name}: {self.events} events over "
            f"{self.duration:.2f}s",
        ]
        for name in sorted(self.replayed_metrics):
            lines.append(f"  {name:<14} {self.replayed_metrics[name]:.4f}")
        if self.replayed_violations:
            lines.append(f"  check violations ({len(self.replayed_violations)}):")
            lines.extend(
                f"    t={v.time:.3f} {v.invariant}: {v.detail}"
                for v in self.replayed_violations
            )
        else:
            lines.append(
                f"  checks: {', '.join(transcript_check_names())} — clean"
            )
        if self.monitor:
            lines.append(
                f"  live monitor: {len(self.monitor.get('invariants', []))} "
                f"invariants, {len(self.monitor.get('violations', []))} "
                f"violations (recorded)"
            )
        if self.listener_errors:
            lines.append(
                f"  listener errors: {self.listener_errors} recorded "
                f"(dispatch isolated; see bus.listener_errors)"
            )
        for block in self.missing:
            lines.append(f"  note: transcript recorded no {block!r} block")
        lines.append(
            "  metrics byte-identical: "
            f"{self.metrics_match}; checks byte-identical: {self.checks_match}"
        )
        return "\n".join(lines)


def _canonical_bytes(value: Any) -> bytes:
    return canonical_json(value).encode()


def replay_transcript(path: str | Path) -> ReplayReport:
    """Load a transcript, recompute its metrics and check verdicts from
    the persisted events alone, and compare against the recorded run.

    Raises
    ------
    TranscriptError
        When the file is not a readable transcript document.
    """
    document = load_transcript(path)
    events = document.events
    recorded_metrics = document.meta.get("metrics")
    recorded_checks = document.meta.get("checks") or {}
    missing = []
    if recorded_metrics is None:
        recorded_metrics = {}
        missing.append("metrics")
    if "violations" not in recorded_checks:
        missing.append("checks")
    duration = events[-1].time if events else 0.0
    return ReplayReport(
        path=Path(path),
        events=len(events),
        duration=duration,
        recorded_metrics=recorded_metrics,
        replayed_metrics=transcript_metrics(events),
        recorded_violations=tuple(
            tuple(row) for row in recorded_checks.get("violations", [])
        ),
        replayed_violations=tuple(check_transcript(events)),
        monitor=document.meta.get("monitor") or {},
        missing=tuple(missing),
        session=document.meta.get("session") or {},
    )
