"""The indexed event bus: O(k) queries, filtered subscriptions, rings.

The seed-era ``EventLog`` was a flat list: every ``of_kind`` /
``for_member`` / ``between`` query re-scanned the whole transcript, and
every listener saw every event.  :class:`EventBus` keeps the same
append-only semantics but maintains

* a time-sorted spine (appends from the virtual clock are already
  monotonic, so ``between`` is a bisect — ``O(log n + k)``; a bus fed
  out-of-order timestamps degrades gracefully to a scan),
* per-kind, per-member and per-group indexes in append order, making
  ``of_kind``/``for_member``/``for_group`` ``O(k)`` and ``count``
  ``O(1)``,
* *filtered* subscriptions — ``subscribe(fn, kinds=..., members=...,
  groups=...)`` — with exception-isolated dispatch: a raising listener
  is recorded in :attr:`EventBus.listener_errors` and never starves the
  listeners after it, and unsubscription removes by identity, so two
  equal callables can coexist safely.

Events appended *from inside a listener* are stored immediately (the
transcript keeps global order) but dispatched after the current event
finishes fanning out, so every listener observes events in the same
global order the log records.

``capacity`` turns the bus into a bounded ring for long-running
sessions: the oldest events are evicted from the spine and every index
in O(1) amortized, with :attr:`EventBus.evicted` counting what was
dropped.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..errors import EventBusError
from ..trace import timing as _timing
from .types import EventKind, FloorEvent

__all__ = ["EventBus", "ListenerError", "Subscription"]

#: When eviction has orphaned this many spine slots (and at least half
#: the list), the spine is compacted in one slice — O(1) amortized.
_COMPACT_THRESHOLD = 1024

#: Most recent listener exceptions retained for inspection.  Bounded so
#: a persistently raising listener — the exact failure dispatch
#: isolation is built to survive — cannot grow a long-running session's
#: memory without limit (exceptions pin their tracebacks).
_MAX_LISTENER_ERRORS = 256


@dataclass(frozen=True)
class ListenerError:
    """One exception a listener raised during dispatch (isolated)."""

    time: float
    listener: Callable[[FloorEvent], None]
    error: Exception


class Subscription:
    """One registered listener plus its kind/member/group filters.

    Created by :meth:`EventBus.subscribe`; ``None`` for a filter
    dimension means "match everything" on that dimension.
    """

    __slots__ = ("listener", "kinds", "members", "groups", "active")

    def __init__(
        self,
        listener: Callable[[FloorEvent], None],
        kinds: frozenset[EventKind] | None,
        members: frozenset[str] | None,
        groups: frozenset[str] | None,
    ) -> None:
        self.listener = listener
        self.kinds = kinds
        self.members = members
        self.groups = groups
        #: Cleared on unsubscribe so an in-flight dispatch skips it.
        self.active = True

    def matches(self, event: FloorEvent) -> bool:
        """Whether this subscription wants to observe ``event``."""
        if self.kinds is not None and event.kind not in self.kinds:
            return False
        if self.members is not None and event.member not in self.members:
            return False
        if self.groups is not None and event.group not in self.groups:
            return False
        return True


def _normalize_kinds(kinds) -> frozenset[EventKind] | None:
    if kinds is None:
        return None
    if isinstance(kinds, EventKind):
        kinds = (kinds,)
    normalized = frozenset(kinds)
    strays = [kind for kind in normalized if not isinstance(kind, EventKind)]
    if strays:
        raise EventBusError(
            f"kinds filter must contain EventKind values, got {strays!r}"
        )
    return normalized


def _normalize_names(names, label: str) -> frozenset[str] | None:
    if names is None:
        return None
    if isinstance(names, str):
        names = (names,)
    normalized = frozenset(names)
    strays = [name for name in normalized if not isinstance(name, str)]
    if strays:
        raise EventBusError(
            f"{label} filter must contain strings, got {strays!r}"
        )
    return normalized


class EventBus:
    """Append-only, indexed event history with filtered subscriptions.

    Drop-in superset of the seed-era ``EventLog`` API (which remains as
    a thin alias in :mod:`repro.core.events`): every query helper keeps
    its signature, but runs off indexes instead of full scans, and
    :meth:`subscribe` grows optional kind/member/group filters.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise EventBusError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        #: Events evicted by the bounded ring mode (0 when unbounded).
        self.evicted = 0
        #: The most recent listener exceptions (isolated per dispatch;
        #: bounded to the last ``_MAX_LISTENER_ERRORS``).
        #: :attr:`listener_error_count` counts every one ever raised.
        self.listener_errors: deque[ListenerError] = deque(
            maxlen=_MAX_LISTENER_ERRORS
        )
        self.listener_error_count = 0
        #: Metadata loaded alongside a persisted transcript (see
        #: :meth:`load`); empty for a live bus.
        self.meta: dict[str, Any] = {}
        self._events: list[FloorEvent] = []
        self._times: list[float] = []
        self._start = 0  # first live index into the spine lists
        self._monotonic = True
        self._max_time = float("-inf")
        self._by_kind: dict[EventKind, deque[FloorEvent]] = {}
        self._by_member: dict[str, deque[FloorEvent]] = {}
        self._by_group: dict[str, deque[FloorEvent]] = {}
        self._subscriptions: list[Subscription] = []
        self._pending: deque[FloorEvent] = deque()
        self._dispatching = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def append(
        self,
        time: float,
        kind: EventKind,
        member: str,
        group: str,
        detail: str = "",
        data: Mapping[str, Any] | None = None,
    ) -> FloorEvent:
        """Record one event; returns the stored entry.

        Listeners run synchronously after the event is stored, so a
        listener reading the log sees the event it was called for.
        ``data`` carries the structured payload fields
        (:meth:`~repro.events.types.FloorEvent.payload`).
        """
        return self.publish(
            FloorEvent(
                time=time, kind=kind, member=member, group=group,
                detail=detail, data=data,
            )
        )

    def publish(self, event: FloorEvent) -> FloorEvent:
        """Store an already-built event and dispatch it to listeners.

        Re-entrant: an event published from inside a listener is stored
        immediately (global order is the storage order) and fanned out
        once the current dispatch finishes.
        """
        self._store(event)
        self._pending.append(event)
        if self._dispatching:
            return event
        self._dispatching = True
        try:
            while self._pending:
                self._dispatch(self._pending.popleft())
        finally:
            self._dispatching = False
        return event

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def subscribe(
        self,
        listener: Callable[[FloorEvent], None],
        kinds: Iterable[EventKind] | EventKind | None = None,
        members: Iterable[str] | str | None = None,
        groups: Iterable[str] | str | None = None,
    ) -> Callable[[], None]:
        """Register a listener for future appends; returns an
        idempotent unsubscribe callable.

        ``kinds`` / ``members`` / ``groups`` restrict which events the
        listener observes (``None`` = all); filters are applied by the
        bus, so a monitor watching floor events no longer pays the
        fanout for every heartbeat the transcript records.  Removal is
        by subscription identity: registering two *equal* callables and
        unsubscribing one never detaches the other.
        """
        subscription = Subscription(
            listener,
            _normalize_kinds(kinds),
            _normalize_names(members, "members"),
            _normalize_names(groups, "groups"),
        )
        self._subscriptions.append(subscription)

        def unsubscribe() -> None:
            subscription.active = False
            self._subscriptions = [
                existing for existing in self._subscriptions
                if existing is not subscription
            ]

        return unsubscribe

    @property
    def subscriptions(self) -> tuple[Subscription, ...]:
        """The currently registered subscriptions (a snapshot)."""
        return tuple(self._subscriptions)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events) - self._start

    def __iter__(self) -> Iterator[FloorEvent]:
        return iter(self._events[self._start:])

    def of_kind(self, kind: EventKind) -> list[FloorEvent]:
        """All events of one kind, in order — O(k)."""
        return list(self._by_kind.get(kind, ()))

    def for_member(self, member: str) -> list[FloorEvent]:
        """All events attributed to one member — O(k)."""
        return list(self._by_member.get(member, ()))

    def for_group(self, group: str) -> list[FloorEvent]:
        """All events of one group — O(k)."""
        return list(self._by_group.get(group, ()))

    def count(self, kind: EventKind | None = None) -> int:
        """How many live events (of one kind, when given) — O(1)."""
        if kind is None:
            return len(self)
        return len(self._by_kind.get(kind, ()))

    def members(self) -> list[str]:
        """Every member name the transcript attributes events to."""
        return sorted(self._by_member)

    def groups(self) -> list[str]:
        """Every group id the transcript contains events for."""
        return sorted(self._by_group)

    def between(self, start: float, end: float) -> list[FloorEvent]:
        """Events with ``start <= time <= end`` (inclusive).

        O(log n + k) on the monotonic spine the virtual clock produces;
        a bus that saw out-of-order timestamps falls back to a scan.
        """
        if self._monotonic:
            lo = bisect_left(self._times, start, self._start)
            hi = bisect_right(self._times, end, self._start)
            return self._events[lo:hi]
        return [
            event for event in self._events[self._start:]
            if start <= event.time <= end
        ]

    def tail(self, count: int = 10) -> list[FloorEvent]:
        """The most recent ``count`` events."""
        if count <= 0:
            return []
        first = max(self._start, len(self._events) - count)
        return self._events[first:]

    def metrics(self, members=None, mode: str = "exact"):
        """Fold the *retained* events into a
        :class:`~repro.metrics.fold.MetricsFold` and return it.

        Convenience for post-hoc analysis of a bus you did not
        subscribe a fold to from birth.  On a ring-bounded bus evicted
        events are gone, so the fold only covers what survived — for
        all-time numbers, subscribe a live fold instead (that is what
        sessions do; see :mod:`repro.metrics`).
        """
        from ..metrics.fold import MetricsFold

        fold = MetricsFold(mode=mode, members=members)
        for event in self:
            fold.add(event)
        return fold

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path, meta: Mapping[str, Any] | None = None) -> Path:
        """Persist the live events as a schema-versioned JSONL
        transcript (:mod:`repro.events.transcript`); returns the path."""
        from .transcript import save_transcript

        return save_transcript(path, list(self), meta=meta)

    @classmethod
    def load(cls, path, capacity: int | None = None) -> "EventBus":
        """Rebuild a bus from a saved transcript.

        The document's metadata lands on :attr:`meta`; events replay
        through :meth:`publish`, so a subclass's indexes stay honest.
        """
        from .transcript import load_transcript

        document = load_transcript(path)
        bus = cls(capacity=capacity)
        for event in document.events:
            bus.publish(event)
        bus.meta = dict(document.meta)
        return bus

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _store(self, event: FloorEvent) -> None:
        self._events.append(event)
        self._times.append(event.time)
        if event.time >= self._max_time:
            self._max_time = event.time
        else:
            self._monotonic = False
        self._by_kind.setdefault(event.kind, deque()).append(event)
        self._by_member.setdefault(event.member, deque()).append(event)
        self._by_group.setdefault(event.group, deque()).append(event)
        if self.capacity is not None and len(self) > self.capacity:
            self._evict()

    def _evict(self) -> None:
        # The globally oldest event heads every index deque it joined,
        # because all inserts are appends — eviction is three poplefts.
        oldest = self._events[self._start]
        self._start += 1
        self.evicted += 1
        for index, key in (
            (self._by_kind, oldest.kind),
            (self._by_member, oldest.member),
            (self._by_group, oldest.group),
        ):
            bucket = index[key]
            bucket.popleft()
            if not bucket:
                del index[key]
        if (
            self._start >= _COMPACT_THRESHOLD
            and self._start * 2 >= len(self._events)
        ):
            del self._events[:self._start]
            del self._times[:self._start]
            self._start = 0

    def _dispatch(self, event: FloorEvent) -> None:
        # Timing-plane hook: one global read when profiling is off —
        # this is the hottest per-event seam in the repo.
        profiler = _timing.active()
        if profiler is None:
            self._fan_out(event)
        else:
            with profiler.span("bus.dispatch"):
                self._fan_out(event)

    def _fan_out(self, event: FloorEvent) -> None:
        for subscription in tuple(self._subscriptions):
            if not subscription.active or not subscription.matches(event):
                continue
            try:
                subscription.listener(event)
            except Exception as error:  # noqa: BLE001 - isolation is the point
                self.listener_error_count += 1
                self.listener_errors.append(
                    ListenerError(
                        time=event.time,
                        listener=subscription.listener,
                        error=error,
                    )
                )
