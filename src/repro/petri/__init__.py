"""Petri net substrate: classic nets through DOCPN.

Public API::

    from repro.petri import (
        PetriNet, TimedExecutor, PriorityNet, OCPN, XOCPN, DOCPNSystem,
    )
"""

from .analysis import (
    DeadlockResult,
    LivenessResult,
    MarkingCodec,
    ReachabilityGraph,
    bound_of,
    conservative_weights,
    dead_transitions,
    find_deadlocks,
    incidence_matrix,
    is_bounded,
    is_live,
    place_invariants,
    reachability_graph,
    transition_invariants,
)
from .docpn import DOCPNSite, DOCPNSystem, ideal_schedule, replicate_ocpn_with_interaction
from .net import Marking, PetriNet, Place, Transition
from .ocpn import OCPN, Block
from .priority import PriorityNet, PriorityTimedExecutor
from .render import gantt, marking_summary, to_dot, trace_timeline
from .timed import FiringRecord, FiringTrace, TimedExecutor, TimedPlaceMap
from .xocpn import XOCPN, ChannelBinding

__all__ = [
    "Block",
    "ChannelBinding",
    "DOCPNSite",
    "DOCPNSystem",
    "DeadlockResult",
    "FiringRecord",
    "FiringTrace",
    "LivenessResult",
    "Marking",
    "MarkingCodec",
    "OCPN",
    "PetriNet",
    "Place",
    "PriorityNet",
    "PriorityTimedExecutor",
    "ReachabilityGraph",
    "TimedExecutor",
    "TimedPlaceMap",
    "Transition",
    "XOCPN",
    "bound_of",
    "gantt",
    "marking_summary",
    "to_dot",
    "trace_timeline",
    "conservative_weights",
    "dead_transitions",
    "find_deadlocks",
    "ideal_schedule",
    "incidence_matrix",
    "is_bounded",
    "is_live",
    "place_invariants",
    "reachability_graph",
    "transition_invariants",
    "replicate_ocpn_with_interaction",
]
