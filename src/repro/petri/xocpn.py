"""Extended Object Composition Petri Nets (XOCPN).

XOCPN "can specify temporal relationships for the presentation of
pre-orchestrated multimedia data, and ... set up channels according to
the required QoS of the data" (paper, Section 1, citing Woo, Qazi &
Ghafoor 1994).

The construction here wraps each media block with a *channel setup*
place in front (duration = the channel manager's setup latency) and a
*channel release* transition hook behind.  Channel admission happens at
execution time through :class:`ChannelBinding`, which opens the channel
when the setup place is entered and releases it when the media place
completes — so an over-committed link manifests as a
:class:`~repro.errors.ChannelError` during the run, exactly the failure
XOCPN's QoS negotiation is meant to surface before playout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ChannelError
from ..media.channels import Channel, ChannelManager
from ..media.objects import MediaObject
from .ocpn import OCPN, Block

__all__ = ["XOCPN", "ChannelBinding"]


@dataclass
class ChannelBinding:
    """Runtime channel state for one XOCPN execution.

    Tracks which media have an open channel and enforces admission.
    ``strict`` mode raises on admission failure; non-strict mode records
    the failure and lets playout continue unreserved (degraded service,
    the paper's "downgraded service ... without some pre-specified
    resources").
    """

    manager: ChannelManager
    strict: bool = True
    open_by_media: dict[str, Channel] = field(default_factory=dict)
    failures: list[str] = field(default_factory=list)

    def on_setup(self, media: MediaObject) -> None:
        """Open the channel as its setup place activates."""
        try:
            self.open_by_media[media.name] = self.manager.open(media)
        except ChannelError:
            self.failures.append(media.name)
            if self.strict:
                raise

    def on_complete(self, media_name: str) -> None:
        """Release the channel when the media finishes."""
        channel = self.open_by_media.pop(media_name, None)
        if channel is not None:
            self.manager.release(channel)


class XOCPN(OCPN):
    """An OCPN whose media blocks carry channel setup/teardown.

    Use exactly like :class:`~repro.petri.ocpn.OCPN`; media blocks must
    be created through :meth:`channelled_media_block` (or
    :meth:`relate_media`, the :class:`MediaObject`-aware variant of
    ``relate``).
    """

    def __init__(self, manager: ChannelManager, name: str = "xocpn") -> None:
        super().__init__(name)
        self.manager = manager
        #: place name -> MediaObject for channel setup places.
        self.setup_place_media: dict[str, MediaObject] = {}
        #: media place name -> media name for release bookkeeping.
        self._media_objects: dict[str, MediaObject] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def channelled_media_block(self, media: MediaObject) -> Block:
        """``setup(latency) -> media(duration)`` with channel hooks."""
        self._media_objects[media.name] = media
        setup = self.delay_block(self.manager.setup_latency)
        # Remember the setup place so the runtime can open the channel
        # when it becomes active (it is the only place in the block).
        setup_place = self._place_between(setup)
        self.setup_place_media[setup_place] = media
        body = self.media_block(media.name, media.duration)
        return self.seq(setup, body)

    def relate_media(
        self,
        media_a: MediaObject,
        media_b: MediaObject,
        relation,
        offset: float = 0.0,
    ) -> Block:
        """Channel-aware sibling of :meth:`OCPN.relate`.

        Channel setup is hoisted *before* the temporal construction so
        the QoS negotiation of both objects happens up front (XOCPN's
        pre-orchestration), then the plain OCPN relation plays out.
        """
        setup_a = self.delay_block(self.manager.setup_latency)
        setup_b = self.delay_block(self.manager.setup_latency)
        self.setup_place_media[self._place_between(setup_a)] = media_a
        self.setup_place_media[self._place_between(setup_b)] = media_b
        self._media_objects[media_a.name] = media_a
        self._media_objects[media_b.name] = media_b
        body = self.relate(
            media_a.name,
            media_a.duration,
            media_b.name,
            media_b.duration,
            relation,
            offset=offset,
        )
        return self.seq(self.par(setup_a, setup_b), body)

    def media_object(self, media_name: str) -> MediaObject:
        """The registered MediaObject for a media name."""
        if media_name not in self._media_objects:
            raise ChannelError(f"unknown media object {media_name!r}")
        return self._media_objects[media_name]

    # ------------------------------------------------------------------
    # Runtime wiring
    # ------------------------------------------------------------------
    def make_binding(self, strict: bool = True) -> ChannelBinding:
        """Create a runtime channel binding for one execution."""
        return ChannelBinding(manager=self.manager, strict=strict)

    def attach_binding(self, executor, binding: ChannelBinding) -> None:
        """Wire channel open/close to an executor's trace callbacks.

        Works with :class:`~repro.petri.timed.TimedExecutor`-compatible
        engines: wraps the executor's ``_deposit`` so entering a setup
        place opens the channel and completing the final segment of a
        media object releases it.
        """
        original_deposit = executor._deposit
        last_segment = self._last_segment_index()

        def deposit(place: str, now: float, pre_marked: bool = False) -> None:
            media = self.setup_place_media.get(place)
            if media is not None:
                binding.on_setup(media)
            # Schedule the channel release *before* the deposit schedules
            # the token's availability, so at the media's end instant the
            # bandwidth is back in the pool before downstream transitions
            # fire (same-timestamp events run FIFO).
            tagged = self.media_of_place.get(place)
            if tagged is not None:
                media_name, segment = tagged
                if segment == last_segment.get(media_name):
                    duration = self.durations.get(place)
                    executor.clock.call_at(
                        now + duration, binding.on_complete, media_name
                    )
            original_deposit(place, now, pre_marked=pre_marked)

        executor._deposit = deposit

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _place_between(self, block: Block) -> str:
        """The single place between a delay block's entry and exit."""
        outputs = self.net.outputs(block.entry)
        if len(outputs) != 1:
            raise ChannelError("expected a single-place block")
        return next(iter(outputs))

    def _last_segment_index(self) -> dict[str, int]:
        last: dict[str, int] = {}
        for media_name, segment in self.media_of_place.values():
            last[media_name] = max(last.get(media_name, 0), segment)
        return last
