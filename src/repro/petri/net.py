"""Classic place/transition Petri nets.

This module implements the paper's Section 2.1 definition::

    C = (P, T, I, O)

with ``P`` a finite set of places, ``T`` a finite set of transitions
(the paper writes "transactions"), and ``I``/``O`` mapping each
transition to a *bag* (multiset) of input/output places.  Bags are
represented as integer arc weights.

The net object is mutable during construction and is then typically
executed either directly (:meth:`PetriNet.fire`) or through the timed /
prioritized engines built on top (:mod:`repro.petri.timed`,
:mod:`repro.petri.priority`).

Example
-------
>>> net = PetriNet("producer-consumer")
>>> __ = net.add_place("buffer", tokens=0)
>>> __ = net.add_place("ready", tokens=1)
>>> __ = net.add_transition("produce")
>>> net.add_arc("ready", "produce")
>>> net.add_arc("produce", "buffer")
>>> net.enabled_transitions()
['produce']
>>> net.fire("produce")
>>> net.marking()["buffer"]
1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import (
    DuplicateNodeError,
    NotEnabledError,
    PetriNetError,
    UnknownNodeError,
)

__all__ = ["Place", "Transition", "Marking", "PetriNet"]


@dataclass
class Place:
    """A place (condition / resource holder) in the net.

    Attributes
    ----------
    name:
        Unique identifier within the net.
    tokens:
        Current token count (the net's marking stores the live value;
        this field holds the *initial* marking).
    capacity:
        Optional maximum token count; ``None`` means unbounded.
    label:
        Free-form annotation (e.g. the media object a place represents).
    """

    name: str
    tokens: int = 0
    capacity: int | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if self.tokens < 0:
            raise PetriNetError(f"place {self.name!r}: negative tokens")
        if self.capacity is not None and self.capacity < self.tokens:
            raise PetriNetError(
                f"place {self.name!r}: initial tokens exceed capacity"
            )


@dataclass
class Transition:
    """A transition (event) in the net.

    Attributes
    ----------
    name:
        Unique identifier within the net.
    label:
        Free-form annotation (e.g. "start video").
    """

    name: str
    label: str | None = None


class Marking(dict):
    """A marking: mapping of place name to token count.

    Subclasses ``dict`` so it prints and compares naturally, and adds
    multiset helpers used by the reachability analyser.
    """

    def covers(self, other: Mapping[str, int]) -> bool:
        """``True`` when this marking has at least ``other``'s tokens
        everywhere (the ⊒ relation used for unboundedness detection)."""
        return all(self.get(place, 0) >= count for place, count in other.items())

    def strictly_covers(self, other: Mapping[str, int]) -> bool:
        """Covers and differs in at least one place."""
        return self.covers(other) and any(
            self.get(place, 0) > count for place, count in other.items()
        )

    def total_tokens(self) -> int:
        """Sum of tokens over all places."""
        return sum(self.values())

    def frozen(self) -> tuple[tuple[str, int], ...]:
        """Hashable canonical form (sorted items)."""
        return tuple(sorted(self.items()))


class PetriNet:
    """A mutable place/transition net with weighted arcs.

    Arc weights realize the paper's "bags of places": an input arc of
    weight *w* from place *p* to transition *t* means *t* consumes *w*
    tokens from *p*; an output arc produces *w* tokens.
    """

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._places: dict[str, Place] = {}
        self._transitions: dict[str, Transition] = {}
        # arc weight maps: transition -> {place -> weight}
        self._inputs: dict[str, dict[str, int]] = {}
        self._outputs: dict[str, dict[str, int]] = {}
        self._marking: Marking = Marking()
        self._fire_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_place(
        self,
        name: str,
        tokens: int = 0,
        capacity: int | None = None,
        label: str | None = None,
    ) -> Place:
        """Add a place; returns the created :class:`Place`.

        Raises
        ------
        DuplicateNodeError
            If a place or transition of that name already exists.
        """
        self._check_fresh(name)
        place = Place(name, tokens=tokens, capacity=capacity, label=label)
        self._places[name] = place
        self._marking[name] = tokens
        return place

    def add_transition(self, name: str, label: str | None = None) -> Transition:
        """Add a transition; returns the created :class:`Transition`."""
        self._check_fresh(name)
        transition = Transition(name, label=label)
        self._transitions[name] = transition
        self._inputs[name] = {}
        self._outputs[name] = {}
        return transition

    def add_arc(self, source: str, target: str, weight: int = 1) -> None:
        """Add an arc from ``source`` to ``target``.

        Exactly one endpoint must be a place and the other a transition.
        Adding an arc that already exists accumulates its weight.
        """
        if weight < 1:
            raise PetriNetError(f"arc weight must be >= 1, got {weight!r}")
        if source in self._places and target in self._transitions:
            arcs = self._inputs[target]
            arcs[source] = arcs.get(source, 0) + weight
            return
        if source in self._transitions and target in self._places:
            arcs = self._outputs[source]
            arcs[target] = arcs.get(target, 0) + weight
            return
        if source not in self._places and source not in self._transitions:
            raise UnknownNodeError(f"unknown node {source!r}")
        if target not in self._places and target not in self._transitions:
            raise UnknownNodeError(f"unknown node {target!r}")
        raise PetriNetError(
            f"arc must connect a place and a transition, got "
            f"{source!r} -> {target!r}"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def places(self) -> dict[str, Place]:
        """All places by name (live view; do not mutate)."""
        return self._places

    @property
    def transitions(self) -> dict[str, Transition]:
        """All transitions by name (live view; do not mutate)."""
        return self._transitions

    def inputs(self, transition: str) -> dict[str, int]:
        """Input bag ``I(t)`` of a transition as {place: weight}."""
        self._check_transition(transition)
        return dict(self._inputs[transition])

    def outputs(self, transition: str) -> dict[str, int]:
        """Output bag ``O(t)`` of a transition as {place: weight}."""
        self._check_transition(transition)
        return dict(self._outputs[transition])

    def preset_of_place(self, place: str) -> list[str]:
        """Transitions with an output arc into ``place``."""
        self._check_place(place)
        return [t for t, arcs in self._outputs.items() if place in arcs]

    def postset_of_place(self, place: str) -> list[str]:
        """Transitions with an input arc from ``place``."""
        self._check_place(place)
        return [t for t, arcs in self._inputs.items() if place in arcs]

    def marking(self) -> Marking:
        """A copy of the current marking."""
        return Marking(self._marking)

    def tokens(self, place: str) -> int:
        """Current token count of ``place``."""
        self._check_place(place)
        return self._marking[place]

    @property
    def fire_count(self) -> int:
        """Total number of firings executed on this net instance."""
        return self._fire_count

    # ------------------------------------------------------------------
    # Marking manipulation
    # ------------------------------------------------------------------
    def set_marking(self, marking: Mapping[str, int]) -> None:
        """Replace the current marking (places absent from the mapping
        get zero tokens)."""
        for place, count in marking.items():
            self._check_place(place)
            if count < 0:
                raise PetriNetError(f"negative tokens for place {place!r}")
        self._marking = Marking({name: 0 for name in self._places})
        self._marking.update(marking)

    def reset(self) -> None:
        """Restore every place to its initial token count."""
        self._marking = Marking(
            {name: place.tokens for name, place in self._places.items()}
        )
        self._fire_count = 0

    def put_token(self, place: str, count: int = 1) -> None:
        """Inject ``count`` tokens into ``place`` (external event)."""
        self._check_place(place)
        if count < 0:
            raise PetriNetError("cannot put a negative number of tokens")
        self._marking[place] += count

    def take_token(self, place: str, count: int = 1) -> None:
        """Remove ``count`` tokens from ``place``.

        Raises
        ------
        PetriNetError
            If the place holds fewer than ``count`` tokens.
        """
        self._check_place(place)
        if self._marking[place] < count:
            raise PetriNetError(
                f"place {place!r} holds {self._marking[place]} tokens, "
                f"cannot take {count}"
            )
        self._marking[place] -= count

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def is_enabled(self, transition: str, marking: Mapping[str, int] | None = None) -> bool:
        """Whether ``transition`` may fire in ``marking`` (default: current).

        A transition is enabled when every input place holds at least the
        arc weight and firing would not overflow any capacitated output
        place.
        """
        self._check_transition(transition)
        current = self._marking if marking is None else marking
        for place, weight in self._inputs[transition].items():
            if current.get(place, 0) < weight:
                return False
        for place, weight in self._outputs[transition].items():
            capacity = self._places[place].capacity
            if capacity is None:
                continue
            stays = current.get(place, 0) - self._inputs[transition].get(place, 0)
            if stays + weight > capacity:
                return False
        return True

    def enabled_transitions(self, marking: Mapping[str, int] | None = None) -> list[str]:
        """Names of all enabled transitions, in insertion order."""
        return [t for t in self._transitions if self.is_enabled(t, marking)]

    def fire(self, transition: str) -> Marking:
        """Fire ``transition``, updating and returning the new marking.

        Raises
        ------
        NotEnabledError
            If the transition is not enabled in the current marking.
        """
        if not self.is_enabled(transition):
            raise NotEnabledError(
                f"transition {transition!r} is not enabled in {self.name!r}"
            )
        for place, weight in self._inputs[transition].items():
            self._marking[place] -= weight
        for place, weight in self._outputs[transition].items():
            self._marking[place] += weight
        self._fire_count += 1
        return self.marking()

    def fire_sequence(self, transitions: Iterable[str]) -> Marking:
        """Fire a sequence of transitions in order; returns final marking."""
        for transition in transitions:
            self.fire(transition)
        return self.marking()

    def successor_marking(
        self, marking: Mapping[str, int], transition: str
    ) -> Marking:
        """The marking reached by firing ``transition`` from ``marking``,
        without touching the net's own state (used by the analyser)."""
        if not self.is_enabled(transition, marking):
            raise NotEnabledError(
                f"transition {transition!r} is not enabled in given marking"
            )
        result = Marking({name: marking.get(name, 0) for name in self._places})
        for place, weight in self._inputs[transition].items():
            result[place] -= weight
        for place, weight in self._outputs[transition].items():
            result[place] += weight
        return result

    def conflict_set(self, transition: str) -> list[str]:
        """Other enabled transitions competing for a shared input place.

        The prioritized fire rule (paper Section 2.2) resolves such
        conflicts in favour of priority arcs; the plain net just reports
        them.
        """
        self._check_transition(transition)
        if not self.is_enabled(transition):
            return []
        mine = set(self._inputs[transition])
        rivals = []
        for other in self._transitions:
            if other == transition:
                continue
            if not self.is_enabled(other):
                continue
            if mine & set(self._inputs[other]):
                rivals.append(other)
        return rivals

    def is_deadlocked(self) -> bool:
        """No transition is enabled in the current marking."""
        return not any(self.is_enabled(t) for t in self._transitions)

    # ------------------------------------------------------------------
    # Structural checks
    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Return a list of structural warnings (empty = clean).

        Checks for isolated nodes and transitions with no inputs (source
        transitions are legal but usually a spec mistake in presentation
        nets, where every transition should be driven by time or
        interaction).
        """
        warnings = []
        for name in self._places:
            used_as_input = any(name in arcs for arcs in self._inputs.values())
            used_as_output = any(name in arcs for arcs in self._outputs.values())
            if not used_as_input and not used_as_output:
                warnings.append(f"place {name!r} is isolated")
        for name in self._transitions:
            if not self._inputs[name] and not self._outputs[name]:
                warnings.append(f"transition {name!r} is isolated")
            elif not self._inputs[name]:
                warnings.append(f"transition {name!r} has no input places")
        return warnings

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_fresh(self, name: str) -> None:
        if name in self._places or name in self._transitions:
            raise DuplicateNodeError(f"node {name!r} already exists in {self.name!r}")

    def _check_place(self, name: str) -> None:
        if name not in self._places:
            raise UnknownNodeError(f"unknown place {name!r} in {self.name!r}")

    def _check_transition(self, name: str) -> None:
        if name not in self._transitions:
            raise UnknownNodeError(f"unknown transition {name!r} in {self.name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PetriNet({self.name!r}, places={len(self._places)}, "
            f"transitions={len(self._transitions)}, "
            f"tokens={self._marking.total_tokens()})"
        )
