"""Prioritized Petri nets (Yang, Yu & Guan 1998; paper Section 2.2).

A prioritized net is a five-tuple ``C = (P, T, I, Ip, O)`` where ``I``
maps transitions to bags of *non-priority* input places and ``Ip`` to
bags of *priority* input places — the two input functions are disjoint.
The fire rules from the paper:

1. A transition with only non-priority inputs fires when **all** of
   them are complete and ready (plain AND rule).
2. A transition with a priority input fires on the arrival of the
   priority input **without waiting** for the non-priority inputs.
   (Non-priority tokens that happen to be present are consumed; missing
   ones are forgiven — this is what lets a user interaction or an
   expired time schedule preempt a stalled media arrival.)
3. Several priority inputs concurring at one transition follow the AND
   rule among themselves.
4. A marked place enabling several transitions resolves the conflict in
   favour of a transition reached by a **priority arc** from that place.

A transition whose *only* inputs are priority inputs is driven solely by
them (it does not fire spontaneously).

:class:`PriorityNet` holds the structure and the untimed semantics;
:class:`PriorityTimedExecutor` adds OCPN-style place durations over a
virtual clock (the engine DOCPN builds on).
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..clock.virtual import VirtualClock
from ..errors import NotEnabledError, PetriNetError, UnknownNodeError
from .net import Marking, PetriNet
from .timed import FiringTrace, TimedPlaceMap

__all__ = ["PriorityNet", "PriorityTimedExecutor"]


class PriorityNet:
    """A Petri net with a disjoint priority input function ``Ip``.

    Construction mirrors :class:`~repro.petri.net.PetriNet`; ordinary
    arcs go through :meth:`add_arc`, priority input arcs through
    :meth:`add_priority_arc`.  The plain structure (without priority
    arcs) is available as :attr:`base`; :meth:`to_plain_net` materializes
    *all* arcs into a fresh net for structural analysis.
    """

    def __init__(self, name: str = "priority-net") -> None:
        self.base = PetriNet(name)
        # transition -> {place -> weight} for the priority input bag Ip.
        self._priority_inputs: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.base.name

    def add_place(self, name: str, tokens: int = 0, label: str | None = None):
        """Add a place (delegates to the base net)."""
        return self.base.add_place(name, tokens=tokens, label=label)

    def add_transition(self, name: str, label: str | None = None):
        """Add a transition and its empty priority bag."""
        transition = self.base.add_transition(name, label=label)
        self._priority_inputs[name] = {}
        return transition

    def add_arc(self, source: str, target: str, weight: int = 1) -> None:
        """Add an ordinary arc (delegates to the base net)."""
        self.base.add_arc(source, target, weight)

    def add_priority_arc(self, place: str, transition: str, weight: int = 1) -> None:
        """Add a priority input arc from ``place`` to ``transition``.

        The arc lives only in ``Ip`` — it is *not* an ordinary input.
        """
        if transition not in self.base.transitions:
            raise UnknownNodeError(f"unknown transition {transition!r}")
        if place not in self.base.places:
            raise UnknownNodeError(f"unknown place {place!r}")
        if weight < 1:
            raise PetriNetError(f"arc weight must be >= 1, got {weight!r}")
        arcs = self._priority_inputs[transition]
        arcs[place] = arcs.get(place, 0) + weight

    def to_plain_net(self) -> PetriNet:
        """A fresh :class:`PetriNet` with priority arcs materialized as
        ordinary input arcs (for reachability / invariant analysis)."""
        plain = PetriNet(self.base.name + "-flattened")
        for name, place in self.base.places.items():
            plain.add_place(name, tokens=self.base.tokens(name), label=place.label)
        for name, transition in self.base.transitions.items():
            plain.add_transition(name, label=transition.label)
        for transition in self.base.transitions:
            for place, weight in self.base.inputs(transition).items():
                plain.add_arc(place, transition, weight)
            for place, weight in self.base.outputs(transition).items():
                plain.add_arc(transition, place, weight)
            for place, weight in self._priority_inputs[transition].items():
                plain.add_arc(place, transition, weight)
        return plain

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def priority_inputs(self, transition: str) -> dict[str, int]:
        """The priority bag ``Ip(t)``."""
        if transition not in self._priority_inputs:
            raise UnknownNodeError(f"unknown transition {transition!r}")
        return dict(self._priority_inputs[transition])

    def nonpriority_inputs(self, transition: str) -> dict[str, int]:
        """The ordinary bag ``I(t)``."""
        return self.base.inputs(transition)

    def has_priority_input(self, transition: str) -> bool:
        """Whether ``Ip(t)`` is non-empty."""
        return bool(self._priority_inputs.get(transition))

    def marking(self) -> Marking:
        """A copy of the current marking."""
        return self.base.marking()

    def put_token(self, place: str, count: int = 1) -> None:
        """Inject tokens into a place (external event)."""
        self.base.put_token(place, count)

    # ------------------------------------------------------------------
    # Prioritized semantics
    # ------------------------------------------------------------------
    def is_priority_enabled(
        self, transition: str, marking: Mapping[str, int] | None = None
    ) -> bool:
        """Rule 2/3: all *priority* inputs present (AND among them)."""
        if transition not in self.base.transitions:
            raise UnknownNodeError(f"unknown transition {transition!r}")
        priority = self._priority_inputs.get(transition)
        if not priority:
            return False
        current = self.base.marking() if marking is None else marking
        return all(
            current.get(place, 0) >= weight for place, weight in priority.items()
        )

    def is_plain_enabled(
        self, transition: str, marking: Mapping[str, int] | None = None
    ) -> bool:
        """Rule 1: all non-priority inputs present.

        A transition whose only inputs are priority arcs is *not* plain
        enabled — it fires only when its priority inputs arrive.
        """
        if transition not in self.base.transitions:
            raise UnknownNodeError(f"unknown transition {transition!r}")
        if not self.base.inputs(transition) and self._priority_inputs.get(transition):
            return False
        return self.base.is_enabled(transition, marking)

    def is_enabled(self, transition: str, marking: Mapping[str, int] | None = None) -> bool:
        """Prioritized enabling: plain AND rule, or priority rule."""
        if self.is_priority_enabled(transition, marking):
            return True
        return self.is_plain_enabled(transition, marking)

    def enabled_transitions(self, marking: Mapping[str, int] | None = None) -> list[str]:
        """Names of all transitions enabled under the prioritized rules."""
        return [t for t in self.base.transitions if self.is_enabled(t, marking)]

    def resolve_conflict(self, candidates: list[str]) -> str:
        """Rule 4: prefer a transition with a satisfied priority input.

        Among ``candidates`` (all enabled), returns the first that is
        priority-enabled; falls back to the first candidate.
        """
        if not candidates:
            raise NotEnabledError("no candidate transitions to resolve")
        for transition in candidates:
            if self.is_priority_enabled(transition):
                return transition
        return candidates[0]

    def fire(self, transition: str) -> Marking:
        """Fire under prioritized semantics.

        * priority-forced firing: priority inputs are consumed in full,
          non-priority tokens *as available* (missing ones forgiven);
        * plain firing: non-priority inputs consumed in full, priority
          tokens as available.
        """
        priority_ok = self.is_priority_enabled(transition)
        plain_ok = self.is_plain_enabled(transition)
        if not priority_ok and not plain_ok:
            raise NotEnabledError(f"transition {transition!r} is not enabled")
        marking = self.base.marking()
        for place, weight in self._priority_inputs[transition].items():
            if priority_ok:
                self.base.take_token(place, weight)
            else:
                available = min(weight, marking.get(place, 0))
                if available:
                    self.base.take_token(place, available)
        for place, weight in self.base.inputs(transition).items():
            if plain_ok:
                self.base.take_token(place, weight)
            else:
                current = self.base.tokens(place)
                take = min(weight, current)
                if take:
                    self.base.take_token(place, take)
        for place, weight in self.base.outputs(transition).items():
            self.base.put_token(place, weight)
        self.base._fire_count += 1
        return self.base.marking()

    def step(self) -> str | None:
        """Fire one transition chosen by the conflict rule, or ``None``
        when the net is dead."""
        candidates = self.enabled_transitions()
        if not candidates:
            return None
        chosen = self.resolve_conflict(candidates)
        self.fire(chosen)
        return chosen


class PriorityTimedExecutor:
    """Timed execution of a :class:`PriorityNet` (the DOCPN engine core).

    Combines OCPN place durations with the prioritized fire rules:

    * plain transitions wait for all non-priority input tokens to finish
      their place durations (DOCPN property 1);
    * the arrival of a token in a priority place fires its transition
      immediately, preempting unfinished non-priority inputs
      (property 2) — preempted places have their activity interval
      truncated at the firing time;
    * :meth:`inject_priority` models the user-interaction / global-clock
      events of Section 3.
    """

    def __init__(
        self,
        net: PriorityNet,
        durations: TimedPlaceMap,
        clock: VirtualClock,
        on_fire: Callable[[str, float, bool], None] | None = None,
    ) -> None:
        self.net = net
        self.durations = durations
        self.clock = clock
        self.trace = FiringTrace()
        self._available: dict[str, int] = {}
        self._locked: dict[str, list[float]] = {}  # place -> release times
        self._on_fire = on_fire
        self._started = False
        self.forced_firings = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Deposit the initial marking at the current clock time."""
        if self._started:
            raise PetriNetError("executor already started")
        self._started = True
        now = self.clock.now()
        self._available = {name: 0 for name in self.net.base.places}
        self._locked = {name: [] for name in self.net.base.places}
        for place, count in self.net.marking().items():
            for __ in range(count):
                self._deposit(place, now, pre_marked=True)
        self.clock.call_at(now, self._fire_enabled)

    def run_to_completion(self, max_time: float = 1e9) -> FiringTrace:
        """Run until the net quiesces; returns the trace."""
        if not self._started:
            self.start()
        while True:
            upcoming = self.clock.next_event_time()
            if upcoming is None or upcoming > max_time:
                break
            self.clock.step()
        return self.trace

    def inject_priority(self, place: str, count: int = 1) -> None:
        """Deposit tokens into a priority place *now* (user interaction).

        The token is immediately available regardless of the place's
        duration — interactions are instantaneous events.
        """
        if place not in self.net.base.places:
            raise UnknownNodeError(f"unknown place {place!r}")
        self.net.put_token(place, count)
        self._available[place] = self._available.get(place, 0) + count
        self.clock.call_at(self.clock.now(), self._fire_enabled)

    def inject_token(self, place: str, count: int = 1) -> None:
        """Deposit ordinary tokens (honouring the place duration)."""
        if place not in self.net.base.places:
            raise UnknownNodeError(f"unknown place {place!r}")
        now = self.clock.now()
        for __ in range(count):
            self.net.put_token(place)
            self._deposit(place, now, pre_marked=True)
        self.clock.call_at(now, self._fire_enabled)

    def available_tokens(self, place: str) -> int:
        """Tokens in ``place`` that finished their duration lock."""
        return self._available.get(place, 0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _deposit(self, place: str, now: float, pre_marked: bool = False) -> None:
        if not pre_marked:
            self.net.put_token(place)
        duration = self.durations.get(place)
        release = now + duration
        self.trace.record_interval(place, now, release)
        if duration == 0:
            self._available[place] = self._available.get(place, 0) + 1
        else:
            self._locked.setdefault(place, []).append(release)
            self.clock.call_at(release, self._release, place, release)

    def _release(self, place: str, release: float) -> None:
        locked = self._locked.get(place, [])
        if release in locked:
            locked.remove(release)
            self._available[place] = self._available.get(place, 0) + 1
            self._fire_enabled()

    def _fire_enabled(self) -> None:
        fired = True
        while fired:
            fired = False
            # Priority-enabled transitions first (rule 4 at engine level).
            for transition in self.net.base.transitions:
                if self._priority_ready(transition):
                    self._fire(transition, forced=not self._plain_ready(transition))
                    fired = True
                    break
            if fired:
                continue
            for transition in self.net.base.transitions:
                if self._plain_ready(transition):
                    self._fire(transition, forced=False)
                    fired = True
                    break

    def _priority_ready(self, transition: str) -> bool:
        priority = self.net.priority_inputs(transition)
        if not priority:
            return False
        return all(
            self._available.get(place, 0) >= weight
            for place, weight in priority.items()
        )

    def _plain_ready(self, transition: str) -> bool:
        ordinary = self.net.base.inputs(transition)
        if not ordinary and self.net.has_priority_input(transition):
            return False
        return all(
            self._available.get(place, 0) >= weight
            for place, weight in ordinary.items()
        )

    def _fire(self, transition: str, forced: bool) -> None:
        now = self.clock.now()
        # Consume priority inputs: fully when priority-ready, else as
        # available (same-instant AND rule among equal priorities).
        for place, weight in self.net.priority_inputs(transition).items():
            take = min(weight, self._available.get(place, 0))
            self._consume_available(place, take)
        for place, weight in self.net.base.inputs(transition).items():
            if forced:
                available = self._available.get(place, 0)
                take_available = min(weight, available)
                self._consume_available(place, take_available)
                shortfall = weight - take_available
                preempted = 0
                locked = self._locked.get(place, [])
                while shortfall > 0 and locked:
                    locked.pop(0)
                    preempted += 1
                    shortfall -= 1
                if preempted:
                    self._truncate_intervals(place, now, preempted)
                    in_marking = self.net.base.tokens(place)
                    self.net.base.take_token(place, min(preempted, in_marking))
            else:
                self._consume_available(place, weight)
        started = tuple(self.net.base.outputs(transition))
        for place, weight in self.net.base.outputs(transition).items():
            for __ in range(weight):
                self._deposit(place, now)
        self.trace.record_firing(now, transition, started)
        self.net.base._fire_count += 1
        if forced:
            self.forced_firings += 1
        if self._on_fire is not None:
            self._on_fire(transition, now, forced)

    def _consume_available(self, place: str, count: int) -> None:
        if count <= 0:
            return
        self._available[place] = self._available.get(place, 0) - count
        in_marking = self.net.base.tokens(place)
        self.net.base.take_token(place, min(count, in_marking))

    def _truncate_intervals(self, place: str, now: float, count: int) -> None:
        """Truncate the last ``count`` open intervals of ``place`` at ``now``."""
        spans = self.trace.intervals.get(place, [])
        truncated = 0
        for index in range(len(spans) - 1, -1, -1):
            if truncated >= count:
                break
            start, end = spans[index]
            if end > now:
                spans[index] = (start, now)
                truncated += 1
