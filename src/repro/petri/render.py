"""Rendering: DOT export and text timelines.

The paper presents its model as diagrams (Figure 1).  This module
exports any :class:`~repro.petri.net.PetriNet` to Graphviz DOT (media
places shaded, priority arcs dashed) and renders a
:class:`~repro.petri.timed.FiringTrace` as a text Gantt chart, so a
schedule can be inspected without a GUI::

    title      |##                                  | 0.0-3.0
    slides1    |   ####################             | 3.0-23.0
    narration1 |   ####################             | 3.0-23.0
"""

from __future__ import annotations

from ..errors import PetriNetError
from .net import PetriNet
from .priority import PriorityNet
from .timed import FiringTrace

__all__ = ["to_dot", "gantt", "marking_summary"]


def _quote(name: str) -> str:
    escaped = name.replace('"', '\\"')
    return f'"{escaped}"'


def to_dot(
    net: PetriNet | PriorityNet,
    name: str | None = None,
    media_places: dict[str, tuple[str, int]] | None = None,
) -> str:
    """Render a net as Graphviz DOT.

    Places are circles (media places shaded, with their token count),
    transitions are boxes, priority arcs (when the net is a
    :class:`~repro.petri.priority.PriorityNet`) are dashed and
    labelled ``P``.

    Parameters
    ----------
    media_places:
        Optional ``place -> (media, segment)`` map (an OCPN's
        ``media_of_place``) used for shading and labels.
    """
    priority_net = net if isinstance(net, PriorityNet) else None
    base = net.base if priority_net is not None else net
    media_places = media_places or {}
    lines = [f"digraph {(name or base.name).replace('-', '_')} {{"]
    lines.append("  rankdir=LR;")
    for place_name in base.places:
        tokens = base.tokens(place_name)
        label = place_name
        if place_name in media_places:
            media, segment = media_places[place_name]
            label = f"{media}[{segment}]"
        if tokens:
            label = f"{label}\\n({tokens})"
        style = (
            ' style=filled fillcolor="lightblue"'
            if place_name in media_places
            else ""
        )
        lines.append(
            f"  {_quote(place_name)} [shape=circle label={_quote(label)}{style}];"
        )
    for transition_name in base.transitions:
        lines.append(
            f"  {_quote(transition_name)} "
            f"[shape=box height=0.2 label={_quote(transition_name)}];"
        )
    for transition_name in base.transitions:
        for place_name, weight in base.inputs(transition_name).items():
            attrs = f' [label="{weight}"]' if weight > 1 else ""
            lines.append(
                f"  {_quote(place_name)} -> {_quote(transition_name)}{attrs};"
            )
        for place_name, weight in base.outputs(transition_name).items():
            attrs = f' [label="{weight}"]' if weight > 1 else ""
            lines.append(
                f"  {_quote(transition_name)} -> {_quote(place_name)}{attrs};"
            )
        if priority_net is not None:
            for place_name, weight in priority_net.priority_inputs(
                transition_name
            ).items():
                label = f"P{weight}" if weight > 1 else "P"
                lines.append(
                    f"  {_quote(place_name)} -> {_quote(transition_name)} "
                    f'[style=dashed label="{label}"];'
                )
    lines.append("}")
    return "\n".join(lines)


def gantt(
    intervals: dict[str, tuple[float, float]],
    width: int = 48,
) -> str:
    """Text Gantt chart of media intervals.

    ``intervals`` maps media name to ``(start, end)`` — the output of
    :meth:`~repro.petri.ocpn.OCPN.media_intervals` or a
    :class:`~repro.temporal.schedule.Schedule`'s ``intervals``.

    Raises
    ------
    PetriNetError
        If ``width`` is not positive or ``intervals`` is empty.
    """
    if width <= 0:
        raise PetriNetError(f"width must be positive, got {width!r}")
    if not intervals:
        raise PetriNetError("nothing to render: intervals are empty")
    end_max = max(end for __, end in intervals.values())
    scale = width / end_max if end_max > 0 else 1.0
    name_width = max(len(name) for name in intervals)
    lines = []
    for name in sorted(intervals, key=lambda n: intervals[n]):
        start, end = intervals[name]
        lead = int(round(start * scale))
        body = max(1, int(round((end - start) * scale)))
        bar = " " * lead + "#" * body
        bar = bar[:width].ljust(width)
        lines.append(f"{name.ljust(name_width)} |{bar}| {start:.1f}-{end:.1f}")
    return "\n".join(lines)


def marking_summary(net: PetriNet | PriorityNet) -> str:
    """One-line-per-marked-place summary of the current marking."""
    base = net.base if isinstance(net, PriorityNet) else net
    marked = [
        f"{place}={count}" for place, count in sorted(base.marking().items()) if count
    ]
    if not marked:
        return f"{base.name}: (empty marking)"
    return f"{base.name}: " + ", ".join(marked)


def trace_timeline(trace: FiringTrace, width: int = 48) -> str:
    """Gantt of a trace's per-place activity (merges nothing; raw)."""
    merged: dict[str, tuple[float, float]] = {}
    for place, spans in trace.intervals.items():
        if not spans:
            continue
        starts = [start for start, __ in spans]
        ends = [end for __, end in spans]
        merged[place] = (min(starts), max(ends))
    return gantt(merged, width=width)
