"""Analysis of place/transition nets.

The paper uses Petri nets both as a specification notation and as a
verifiable model ("users can dynamically modify and verify different
kinds of conditions during the presentation").  This module provides the
verification side:

* :func:`reachability_graph` — explicit-state exploration with a node
  budget;
* :func:`is_bounded` / :func:`bound_of` — coverability-based
  unboundedness detection (Karp–Miller style cut-off);
* :func:`find_deadlocks` — reachable dead markings, with
  ``complete``/``explored`` provenance on the result;
* :func:`is_live` — whether every transition can always fire again
  (checked over the explored graph, undecided on a truncated one);
* :func:`incidence_matrix`, :func:`place_invariants` — structural
  analysis via the incidence matrix over the rationals.

:class:`MarkingCodec` is the canonical fixed-place-order encoder the
hot paths intern markings through (``Marking.frozen()`` re-sorts the
items on every call; the codec reads places in net declaration order,
so building a key is one pass with no sort).  The richer byte-level
engine lives in :mod:`repro.check.explicit`.

All functions leave the net's own marking untouched.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from operator import itemgetter
from typing import Iterator, Mapping, Sequence

from ..errors import PetriNetError
from .net import Marking, PetriNet

__all__ = [
    "MarkingCodec",
    "ReachabilityGraph",
    "reachability_graph",
    "is_bounded",
    "bound_of",
    "DeadlockResult",
    "find_deadlocks",
    "LivenessResult",
    "is_live",
    "dead_transitions",
    "incidence_matrix",
    "place_invariants",
    "transition_invariants",
    "conservative_weights",
]

_MarkingKey = tuple[int, ...]


def _mutating(name: str):
    base = getattr(list, name)

    def method(self, *args, **kwargs):
        self.version += 1
        return base(self, *args, **kwargs)

    method.__name__ = name
    method.__doc__ = getattr(base, "__doc__", None)
    return method


class _ObservedList(list):
    """A list that counts its mutations.

    :class:`ReachabilityGraph` keys its adjacency cache on the edge
    list's ``version`` so *any* mutation — append, in-place
    replacement, deletion, sort — invalidates the cache, preserving
    the pre-cache behaviour where every query reflected the live list.
    """

    # Class-level default: pickle rebuilds list subclasses by calling
    # append() before __init__ runs, and appends must find a version.
    version = 0

    def __init__(self, iterable=()) -> None:
        super().__init__(iterable)
        self.version = 0


for _name in (
    "append", "extend", "insert", "remove", "pop", "clear",
    "sort", "reverse", "__setitem__", "__delitem__", "__iadd__", "__imul__",
):
    setattr(_ObservedList, _name, _mutating(_name))
del _name


class MarkingCodec:
    """Canonical marking keys/encodings in fixed place order.

    The codec snapshots a net's place order once; every key is then a
    plain tuple of counts in that order — no per-marking sorting, which
    is what made ``Marking.frozen()`` the interning hot spot.
    :meth:`encode` additionally packs a counts tuple into ``bytes`` for
    the dense visited-set of :mod:`repro.check.explicit`.
    """

    __slots__ = ("places", "_index", "_getter")

    def __init__(self, net: PetriNet) -> None:
        self.places: tuple[str, ...] = tuple(net.places)
        self._index: dict[str, int] = {
            place: i for i, place in enumerate(self.places)
        }
        # itemgetter reads all counts in one C call on the (dense)
        # markings the analysers produce; sparse markings fall back to
        # a per-place get in key().
        if len(self.places) > 1:
            self._getter = itemgetter(*self.places)
        elif self.places:
            single = self.places[0]
            self._getter = lambda marking: (marking[single],)
        else:
            self._getter = lambda marking: ()

    def __len__(self) -> int:
        return len(self.places)

    def index_of(self, place: str) -> int:
        """Position of ``place`` in the fixed order.

        Raises
        ------
        PetriNetError
            For a place the codec's net does not have.
        """
        try:
            return self._index[place]
        except KeyError:
            raise PetriNetError(f"codec knows no place {place!r}") from None

    def key(self, marking: Mapping[str, int]) -> _MarkingKey:
        """Hashable canonical key (counts tuple in fixed place order).

        Unlike ``Marking.frozen()`` this never sorts; dense markings
        (every place present — what the analysers produce) take a
        single C-level multi-get.
        """
        try:
            return self._getter(marking)
        except KeyError:
            return tuple(marking.get(place, 0) for place in self.places)

    def encode(self, counts: Sequence[int]) -> bytes:
        """Pack a counts sequence into bytes (one byte per place while
        every count fits; an 8-byte-per-place wide form otherwise).

        The two forms have different lengths for the same codec, so
        keys from either never collide; a given marking always encodes
        the same way.
        """
        try:
            return bytes(counts)
        except ValueError:
            return b"".join(count.to_bytes(8, "big") for count in counts)

    def marking(self, counts: Sequence[int]) -> Marking:
        """Rebuild a :class:`~repro.petri.net.Marking` from counts."""
        return Marking(zip(self.places, counts))


@dataclass
class ReachabilityGraph:
    """Explicit reachability graph of a net from its current marking.

    Attributes
    ----------
    nodes:
        All discovered markings in discovery (BFS) order.
    edges:
        ``(source_index, transition, target_index)`` triples.
    complete:
        ``False`` when exploration stopped at ``max_nodes`` and states
        may be missing.
    """

    nodes: list[Marking] = field(default_factory=list)
    edges: list[tuple[int, str, int]] = field(default_factory=_ObservedList)
    complete: bool = True
    _adjacency: list[list[tuple[str, int]]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _adjacency_token: tuple = field(
        default=(), init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.nodes)

    def _out_edges(self) -> list[list[tuple[str, int]]]:
        # Adjacency is built once and reused.  The cache token covers
        # the edge list's identity and mutation count (hand-assembled
        # graphs edit edges in place) plus the node count; an edge list
        # replaced with a plain list has no mutation counter, so it is
        # rebuilt on every call — the pre-cache behaviour.
        edges = self.edges
        token = (
            id(edges),
            getattr(edges, "version", None),
            len(edges),
            len(self.nodes),
        )
        if (
            self._adjacency is None
            or token != self._adjacency_token
            or token[1] is None
        ):
            adjacency: list[list[tuple[str, int]]] = [
                [] for __ in range(len(self.nodes))
            ]
            for source, transition, target in edges:
                adjacency[source].append((transition, target))
            self._adjacency = adjacency
            self._adjacency_token = token
        return self._adjacency

    def successors(self, index: int) -> Iterator[tuple[str, int]]:
        """Yield ``(transition, target_index)`` pairs for a node."""
        yield from self._out_edges()[index]

    def deadlock_indices(self) -> list[int]:
        """Indices of nodes with no outgoing edge."""
        adjacency = self._out_edges()
        return [i for i in range(len(self.nodes)) if not adjacency[i]]

    def transitions_seen(self) -> set[str]:
        """All transitions that label at least one edge."""
        return {transition for __, transition, __ in self.edges}


def reachability_graph(net: PetriNet, max_nodes: int = 10_000) -> ReachabilityGraph:
    """Explore the state space of ``net`` from its current marking.

    Exploration is breadth-first and stops after ``max_nodes`` distinct
    markings, setting ``complete=False`` on the result.
    """
    if max_nodes < 1:
        raise PetriNetError(f"max_nodes must be >= 1, got {max_nodes!r}")
    graph = ReachabilityGraph()
    codec = MarkingCodec(net)
    start = net.marking()
    index_of: dict[_MarkingKey, int] = {codec.key(start): 0}
    graph.nodes.append(start)
    # Edges accumulate in a plain list (no per-append mutation
    # accounting on the hot loop) and are wrapped once at the end.
    edges: list[tuple[int, str, int]] = []
    queue: deque[int] = deque([0])
    while queue:
        current_index = queue.popleft()
        current = graph.nodes[current_index]
        for transition in net.enabled_transitions(current):
            successor = net.successor_marking(current, transition)
            key = codec.key(successor)
            if key in index_of:
                target = index_of[key]
            else:
                if len(graph.nodes) >= max_nodes:
                    graph.complete = False
                    continue
                target = len(graph.nodes)
                index_of[key] = target
                graph.nodes.append(successor)
                queue.append(target)
            edges.append((current_index, transition, target))
    graph.edges = _ObservedList(edges)
    return graph


def is_bounded(net: PetriNet, max_nodes: int = 10_000) -> bool:
    """Coverability-based boundedness check.

    Walks the reachability tree keeping each branch's ancestor chain; if
    a marking strictly covers one of its ancestors the net is unbounded
    (a pumpable firing sequence exists).  A net whose exploration drains
    within ``max_nodes`` without such a cover is bounded; exceeding the
    budget without a verdict raises.

    Raises
    ------
    PetriNetError
        If the budget is exhausted before a verdict.
    """
    codec = MarkingCodec(net)
    start = net.marking()
    # Depth-first with explicit ancestor chains.
    stack: list[tuple[Marking, tuple[Marking, ...]]] = [(start, ())]
    seen: set[_MarkingKey] = set()
    visited = 0
    while stack:
        marking, ancestors = stack.pop()
        key = codec.key(marking)
        if key in seen:
            continue
        seen.add(key)
        visited += 1
        if visited > max_nodes:
            raise PetriNetError(
                f"boundedness undecided within {max_nodes} nodes"
            )
        for ancestor in ancestors:
            if marking.strictly_covers(ancestor):
                return False
        chain = ancestors + (marking,)
        for transition in net.enabled_transitions(marking):
            successor = net.successor_marking(marking, transition)
            stack.append((successor, chain))
    return True


def bound_of(net: PetriNet, place: str, max_nodes: int = 10_000) -> int:
    """Maximum token count ``place`` reaches over the explored graph.

    Only meaningful on bounded nets (check :func:`is_bounded` first);
    on incomplete exploration this is a lower bound.
    """
    graph = reachability_graph(net, max_nodes=max_nodes)
    return max(marking.get(place, 0) for marking in graph.nodes)


class DeadlockResult(list):
    """Reachable dead markings plus exploration provenance.

    Behaves exactly like the plain ``list[Marking]`` it used to be,
    with two extra attributes: ``complete`` (``False`` when the state
    budget truncated exploration, so deadlocks may be missing) and
    ``explored`` (how many distinct markings were visited).  An empty
    result with ``complete=False`` is *not* a deadlock-freedom proof.
    """

    def __init__(
        self,
        deadlocks: Sequence[Marking] = (),
        complete: bool = True,
        explored: int = 0,
    ) -> None:
        super().__init__(deadlocks)
        self.complete = complete
        self.explored = explored


def find_deadlocks(net: PetriNet, max_nodes: int = 10_000) -> DeadlockResult:
    """All reachable dead markings (no transition enabled).

    The result carries ``complete``/``explored`` so a truncated search
    cannot masquerade as a definitive all-clear.  On a truncated graph
    the edge-less frontier nodes (whose successors were simply never
    interned) are re-checked for enabledness, so only genuinely dead
    markings are reported.
    """
    graph = reachability_graph(net, max_nodes=max_nodes)
    deadlocks = [graph.nodes[i] for i in graph.deadlock_indices()]
    if not graph.complete:
        deadlocks = [
            marking
            for marking in deadlocks
            if not net.enabled_transitions(marking)
        ]
    return DeadlockResult(
        deadlocks, complete=graph.complete, explored=len(graph.nodes)
    )


def dead_transitions(net: PetriNet, max_nodes: int = 10_000) -> set[str]:
    """Transitions that never fire anywhere in the explored graph (L0-dead)."""
    graph = reachability_graph(net, max_nodes=max_nodes)
    return set(net.transitions) - graph.transitions_seen()


@dataclass(frozen=True)
class LivenessResult:
    """Tri-state liveness verdict with exploration provenance.

    ``live`` is ``None`` when the state budget truncated exploration
    before a verdict; ``complete``/``explored`` say how far the search
    got.  Using an undecided result as a boolean raises, so truncation
    can never silently pass for a definitive answer — inspect ``live``
    (or ``decided``) to handle the undecided case explicitly.
    """

    live: bool | None
    complete: bool
    explored: int

    @property
    def decided(self) -> bool:
        """Whether exploration reached a definitive verdict."""
        return self.live is not None

    def __bool__(self) -> bool:
        if self.live is None:
            raise PetriNetError(
                f"liveness undecided: state space exceeded the budget "
                f"after {self.explored} markings"
            )
        return self.live


def is_live(net: PetriNet, max_nodes: int = 10_000) -> LivenessResult:
    """Liveness over the explored graph (L4 in Murata's hierarchy).

    Every transition must be fireable again from every reachable
    marking, i.e. from each node some path reaches an edge labelled with
    each transition.  Checked by fixpoint on the finite graph.  On a
    truncated exploration the result is undecided
    (``LivenessResult(live=None, complete=False, ...)``) rather than a
    guess; truthiness of an undecided result raises.
    """
    graph = reachability_graph(net, max_nodes=max_nodes)
    explored = len(graph.nodes)
    if not graph.complete:
        return LivenessResult(live=None, complete=False, explored=explored)
    transitions = set(net.transitions)
    if not transitions:
        return LivenessResult(live=True, complete=True, explored=explored)
    # For each transition: the set of nodes from which it is eventually
    # fireable is the backward closure of the sources of its edges.
    predecessors: dict[int, list[int]] = {i: [] for i in range(len(graph.nodes))}
    for source, __, target in graph.edges:
        predecessors[target].append(source)
    for transition in transitions:
        can_fire = {s for s, label, __ in graph.edges if label == transition}
        if not can_fire:
            return LivenessResult(live=False, complete=True, explored=explored)
        frontier = deque(can_fire)
        while frontier:
            node = frontier.popleft()
            for predecessor in predecessors[node]:
                if predecessor not in can_fire:
                    can_fire.add(predecessor)
                    frontier.append(predecessor)
        if len(can_fire) != len(graph.nodes):
            return LivenessResult(live=False, complete=True, explored=explored)
    return LivenessResult(live=True, complete=True, explored=explored)


def incidence_matrix(net: PetriNet) -> tuple[list[str], list[str], list[list[int]]]:
    """The incidence matrix ``C[p][t] = O(t)(p) - I(t)(p)``.

    Returns ``(place_names, transition_names, matrix)`` with rows indexed
    by place and columns by transition, both in insertion order.
    """
    place_names = list(net.places)
    transition_names = list(net.transitions)
    matrix = []
    for place in place_names:
        row = []
        for transition in transition_names:
            produced = net.outputs(transition).get(place, 0)
            consumed = net.inputs(transition).get(place, 0)
            row.append(produced - consumed)
        matrix.append(row)
    return place_names, transition_names, matrix


def place_invariants(net: PetriNet) -> list[dict[str, Fraction]]:
    """A basis of place invariants (left null space of the incidence
    matrix) over the rationals.

    Each invariant is a weighting ``y`` of places with
    ``y · C = 0``; for any reachable marking ``m``,
    ``y · m == y · m0``.  Used to prove token conservation of the
    OCPN constructions.
    """
    place_names, transition_names, matrix = incidence_matrix(net)
    n_places = len(place_names)
    n_transitions = len(transition_names)
    if n_places == 0:
        return []
    # Solve y^T C = 0  <=>  C^T y = 0. Build C^T as rows of Fractions.
    rows = [
        [Fraction(matrix[p][t]) for p in range(n_places)]
        for t in range(n_transitions)
    ]
    # Gauss-Jordan elimination on C^T.
    pivot_cols: list[int] = []
    rank = 0
    for col in range(n_places):
        pivot_row = None
        for r in range(rank, len(rows)):
            if rows[r][col] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            continue
        rows[rank], rows[pivot_row] = rows[pivot_row], rows[rank]
        pivot_value = rows[rank][col]
        rows[rank] = [value / pivot_value for value in rows[rank]]
        for r in range(len(rows)):
            if r != rank and rows[r][col] != 0:
                factor = rows[r][col]
                rows[r] = [
                    value - factor * pivot
                    for value, pivot in zip(rows[r], rows[rank])
                ]
        pivot_cols.append(col)
        rank += 1
    free_cols = [c for c in range(n_places) if c not in pivot_cols]
    invariants = []
    for free in free_cols:
        vector = [Fraction(0)] * n_places
        vector[free] = Fraction(1)
        for r, pivot_col in enumerate(pivot_cols):
            vector[pivot_col] = -rows[r][free]
        invariants.append(
            {place_names[i]: vector[i] for i in range(n_places) if vector[i] != 0}
        )
    return invariants


def transition_invariants(net: PetriNet) -> list[dict[str, Fraction]]:
    """A basis of transition invariants (right null space of the
    incidence matrix) over the rationals.

    A T-invariant ``x`` satisfies ``C · x = 0``: firing each transition
    ``t`` exactly ``x[t]`` times (in some realizable order) reproduces
    the starting marking.  Cyclic presentation structures (loops, token
    round-trips) show up here; a one-shot OCPN typically has none.
    """
    place_names, transition_names, matrix = incidence_matrix(net)
    n_places = len(place_names)
    n_transitions = len(transition_names)
    if n_transitions == 0:
        return []
    rows = [
        [Fraction(matrix[p][t]) for t in range(n_transitions)]
        for p in range(n_places)
    ]
    pivot_cols: list[int] = []
    rank = 0
    for col in range(n_transitions):
        pivot_row = None
        for r in range(rank, len(rows)):
            if rows[r][col] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            continue
        rows[rank], rows[pivot_row] = rows[pivot_row], rows[rank]
        pivot_value = rows[rank][col]
        rows[rank] = [value / pivot_value for value in rows[rank]]
        for r in range(len(rows)):
            if r != rank and rows[r][col] != 0:
                factor = rows[r][col]
                rows[r] = [
                    value - factor * pivot
                    for value, pivot in zip(rows[r], rows[rank])
                ]
        pivot_cols.append(col)
        rank += 1
    free_cols = [c for c in range(n_transitions) if c not in pivot_cols]
    invariants = []
    for free in free_cols:
        vector = [Fraction(0)] * n_transitions
        vector[free] = Fraction(1)
        for r, pivot_col in enumerate(pivot_cols):
            vector[pivot_col] = -rows[r][free]
        invariants.append(
            {
                transition_names[i]: vector[i]
                for i in range(n_transitions)
                if vector[i] != 0
            }
        )
    return invariants


def conservative_weights(net: PetriNet) -> dict[str, Fraction] | None:
    """A strictly positive place invariant, if one exists.

    A net with such a weighting is *conservative*: the weighted token
    count is constant under any firing.  Returns ``None`` when no
    strictly positive combination of the invariant basis is found by the
    simple summation heuristic.
    """
    basis = place_invariants(net)
    if not basis:
        return None
    combined: dict[str, Fraction] = {}
    for invariant in basis:
        for place, weight in invariant.items():
            combined[place] = combined.get(place, Fraction(0)) + weight
    if len(combined) == len(net.places) and all(w > 0 for w in combined.values()):
        return combined
    return None
