"""Analysis of place/transition nets.

The paper uses Petri nets both as a specification notation and as a
verifiable model ("users can dynamically modify and verify different
kinds of conditions during the presentation").  This module provides the
verification side:

* :func:`reachability_graph` — explicit-state exploration with a node
  budget;
* :func:`is_bounded` / :func:`bound_of` — coverability-based
  unboundedness detection (Karp–Miller style cut-off);
* :func:`find_deadlocks` — reachable dead markings;
* :func:`is_live` — whether every transition can always fire again
  (checked over the explored graph);
* :func:`incidence_matrix`, :func:`place_invariants` — structural
  analysis via the incidence matrix over the rationals.

All functions leave the net's own marking untouched.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterator

from ..errors import PetriNetError
from .net import Marking, PetriNet

__all__ = [
    "ReachabilityGraph",
    "reachability_graph",
    "is_bounded",
    "bound_of",
    "find_deadlocks",
    "is_live",
    "dead_transitions",
    "incidence_matrix",
    "place_invariants",
    "transition_invariants",
    "conservative_weights",
]

_MarkingKey = tuple[tuple[str, int], ...]


@dataclass
class ReachabilityGraph:
    """Explicit reachability graph of a net from its current marking.

    Attributes
    ----------
    nodes:
        All discovered markings in discovery (BFS) order.
    edges:
        ``(source_index, transition, target_index)`` triples.
    complete:
        ``False`` when exploration stopped at ``max_nodes`` and states
        may be missing.
    """

    nodes: list[Marking] = field(default_factory=list)
    edges: list[tuple[int, str, int]] = field(default_factory=list)
    complete: bool = True

    def __len__(self) -> int:
        return len(self.nodes)

    def successors(self, index: int) -> Iterator[tuple[str, int]]:
        """Yield ``(transition, target_index)`` pairs for a node."""
        for source, transition, target in self.edges:
            if source == index:
                yield transition, target

    def deadlock_indices(self) -> list[int]:
        """Indices of nodes with no outgoing edge."""
        have_out = {source for source, __, __ in self.edges}
        return [i for i in range(len(self.nodes)) if i not in have_out]

    def transitions_seen(self) -> set[str]:
        """All transitions that label at least one edge."""
        return {transition for __, transition, __ in self.edges}


def reachability_graph(net: PetriNet, max_nodes: int = 10_000) -> ReachabilityGraph:
    """Explore the state space of ``net`` from its current marking.

    Exploration is breadth-first and stops after ``max_nodes`` distinct
    markings, setting ``complete=False`` on the result.
    """
    if max_nodes < 1:
        raise PetriNetError(f"max_nodes must be >= 1, got {max_nodes!r}")
    graph = ReachabilityGraph()
    start = net.marking()
    index_of: dict[_MarkingKey, int] = {start.frozen(): 0}
    graph.nodes.append(start)
    queue: deque[int] = deque([0])
    while queue:
        current_index = queue.popleft()
        current = graph.nodes[current_index]
        for transition in net.enabled_transitions(current):
            successor = net.successor_marking(current, transition)
            key = successor.frozen()
            if key in index_of:
                target = index_of[key]
            else:
                if len(graph.nodes) >= max_nodes:
                    graph.complete = False
                    continue
                target = len(graph.nodes)
                index_of[key] = target
                graph.nodes.append(successor)
                queue.append(target)
            graph.edges.append((current_index, transition, target))
    return graph


def is_bounded(net: PetriNet, max_nodes: int = 10_000) -> bool:
    """Coverability-based boundedness check.

    Walks the reachability tree keeping each branch's ancestor chain; if
    a marking strictly covers one of its ancestors the net is unbounded
    (a pumpable firing sequence exists).  A net whose exploration drains
    within ``max_nodes`` without such a cover is bounded; exceeding the
    budget without a verdict raises.

    Raises
    ------
    PetriNetError
        If the budget is exhausted before a verdict.
    """
    start = net.marking()
    # Depth-first with explicit ancestor chains.
    stack: list[tuple[Marking, tuple[Marking, ...]]] = [(start, ())]
    seen: set[_MarkingKey] = set()
    visited = 0
    while stack:
        marking, ancestors = stack.pop()
        key = marking.frozen()
        if key in seen:
            continue
        seen.add(key)
        visited += 1
        if visited > max_nodes:
            raise PetriNetError(
                f"boundedness undecided within {max_nodes} nodes"
            )
        for ancestor in ancestors:
            if marking.strictly_covers(ancestor):
                return False
        chain = ancestors + (marking,)
        for transition in net.enabled_transitions(marking):
            successor = net.successor_marking(marking, transition)
            stack.append((successor, chain))
    return True


def bound_of(net: PetriNet, place: str, max_nodes: int = 10_000) -> int:
    """Maximum token count ``place`` reaches over the explored graph.

    Only meaningful on bounded nets (check :func:`is_bounded` first);
    on incomplete exploration this is a lower bound.
    """
    graph = reachability_graph(net, max_nodes=max_nodes)
    return max(marking.get(place, 0) for marking in graph.nodes)


def find_deadlocks(net: PetriNet, max_nodes: int = 10_000) -> list[Marking]:
    """All reachable dead markings (no transition enabled)."""
    graph = reachability_graph(net, max_nodes=max_nodes)
    return [graph.nodes[i] for i in graph.deadlock_indices()]


def dead_transitions(net: PetriNet, max_nodes: int = 10_000) -> set[str]:
    """Transitions that never fire anywhere in the explored graph (L0-dead)."""
    graph = reachability_graph(net, max_nodes=max_nodes)
    return set(net.transitions) - graph.transitions_seen()


def is_live(net: PetriNet, max_nodes: int = 10_000) -> bool:
    """Liveness over the explored graph (L4 in Murata's hierarchy).

    Every transition must be fireable again from every reachable
    marking, i.e. from each node some path reaches an edge labelled with
    each transition.  Checked by fixpoint on the finite graph; only
    meaningful when the graph is complete.
    """
    graph = reachability_graph(net, max_nodes=max_nodes)
    if not graph.complete:
        raise PetriNetError("liveness undecided: state space exceeded budget")
    transitions = set(net.transitions)
    if not transitions:
        return True
    # For each transition: the set of nodes from which it is eventually
    # fireable is the backward closure of the sources of its edges.
    predecessors: dict[int, list[int]] = {i: [] for i in range(len(graph.nodes))}
    for source, __, target in graph.edges:
        predecessors[target].append(source)
    for transition in transitions:
        can_fire = {s for s, label, __ in graph.edges if label == transition}
        if not can_fire:
            return False
        frontier = deque(can_fire)
        while frontier:
            node = frontier.popleft()
            for predecessor in predecessors[node]:
                if predecessor not in can_fire:
                    can_fire.add(predecessor)
                    frontier.append(predecessor)
        if len(can_fire) != len(graph.nodes):
            return False
    return True


def incidence_matrix(net: PetriNet) -> tuple[list[str], list[str], list[list[int]]]:
    """The incidence matrix ``C[p][t] = O(t)(p) - I(t)(p)``.

    Returns ``(place_names, transition_names, matrix)`` with rows indexed
    by place and columns by transition, both in insertion order.
    """
    place_names = list(net.places)
    transition_names = list(net.transitions)
    matrix = []
    for place in place_names:
        row = []
        for transition in transition_names:
            produced = net.outputs(transition).get(place, 0)
            consumed = net.inputs(transition).get(place, 0)
            row.append(produced - consumed)
        matrix.append(row)
    return place_names, transition_names, matrix


def place_invariants(net: PetriNet) -> list[dict[str, Fraction]]:
    """A basis of place invariants (left null space of the incidence
    matrix) over the rationals.

    Each invariant is a weighting ``y`` of places with
    ``y · C = 0``; for any reachable marking ``m``,
    ``y · m == y · m0``.  Used to prove token conservation of the
    OCPN constructions.
    """
    place_names, transition_names, matrix = incidence_matrix(net)
    n_places = len(place_names)
    n_transitions = len(transition_names)
    if n_places == 0:
        return []
    # Solve y^T C = 0  <=>  C^T y = 0. Build C^T as rows of Fractions.
    rows = [
        [Fraction(matrix[p][t]) for p in range(n_places)]
        for t in range(n_transitions)
    ]
    # Gauss-Jordan elimination on C^T.
    pivot_cols: list[int] = []
    rank = 0
    for col in range(n_places):
        pivot_row = None
        for r in range(rank, len(rows)):
            if rows[r][col] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            continue
        rows[rank], rows[pivot_row] = rows[pivot_row], rows[rank]
        pivot_value = rows[rank][col]
        rows[rank] = [value / pivot_value for value in rows[rank]]
        for r in range(len(rows)):
            if r != rank and rows[r][col] != 0:
                factor = rows[r][col]
                rows[r] = [
                    value - factor * pivot
                    for value, pivot in zip(rows[r], rows[rank])
                ]
        pivot_cols.append(col)
        rank += 1
    free_cols = [c for c in range(n_places) if c not in pivot_cols]
    invariants = []
    for free in free_cols:
        vector = [Fraction(0)] * n_places
        vector[free] = Fraction(1)
        for r, pivot_col in enumerate(pivot_cols):
            vector[pivot_col] = -rows[r][free]
        invariants.append(
            {place_names[i]: vector[i] for i in range(n_places) if vector[i] != 0}
        )
    return invariants


def transition_invariants(net: PetriNet) -> list[dict[str, Fraction]]:
    """A basis of transition invariants (right null space of the
    incidence matrix) over the rationals.

    A T-invariant ``x`` satisfies ``C · x = 0``: firing each transition
    ``t`` exactly ``x[t]`` times (in some realizable order) reproduces
    the starting marking.  Cyclic presentation structures (loops, token
    round-trips) show up here; a one-shot OCPN typically has none.
    """
    place_names, transition_names, matrix = incidence_matrix(net)
    n_places = len(place_names)
    n_transitions = len(transition_names)
    if n_transitions == 0:
        return []
    rows = [
        [Fraction(matrix[p][t]) for t in range(n_transitions)]
        for p in range(n_places)
    ]
    pivot_cols: list[int] = []
    rank = 0
    for col in range(n_transitions):
        pivot_row = None
        for r in range(rank, len(rows)):
            if rows[r][col] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            continue
        rows[rank], rows[pivot_row] = rows[pivot_row], rows[rank]
        pivot_value = rows[rank][col]
        rows[rank] = [value / pivot_value for value in rows[rank]]
        for r in range(len(rows)):
            if r != rank and rows[r][col] != 0:
                factor = rows[r][col]
                rows[r] = [
                    value - factor * pivot
                    for value, pivot in zip(rows[r], rows[rank])
                ]
        pivot_cols.append(col)
        rank += 1
    free_cols = [c for c in range(n_transitions) if c not in pivot_cols]
    invariants = []
    for free in free_cols:
        vector = [Fraction(0)] * n_transitions
        vector[free] = Fraction(1)
        for r, pivot_col in enumerate(pivot_cols):
            vector[pivot_col] = -rows[r][free]
        invariants.append(
            {
                transition_names[i]: vector[i]
                for i in range(n_transitions)
                if vector[i] != 0
            }
        )
    return invariants


def conservative_weights(net: PetriNet) -> dict[str, Fraction] | None:
    """A strictly positive place invariant, if one exists.

    A net with such a weighting is *conservative*: the weighted token
    count is constant under any firing.  Returns ``None`` when no
    strictly positive combination of the invariant basis is found by the
    simple summation heuristic.
    """
    basis = place_invariants(net)
    if not basis:
        return None
    combined: dict[str, Fraction] = {}
    for invariant in basis:
        for place, weight in invariant.items():
            combined[place] = combined.get(place, Fraction(0)) + weight
    if len(combined) == len(net.places) and all(w > 0 for w in combined.values()):
        return combined
    return None
