"""Distributed Object Composition Petri Nets (DOCPN).

DOCPN is the paper's model (Sections 2.2 and 3).  Its five properties:

1. transitions wait for all input signals, then fire concurrently;
2. a priority input fires a transition without waiting for the
   non-priority inputs;
3. OCPN/XOCPN synchronization applies among inter-media objects;
4. asynchrony across platforms is handled with a **global clock**;
5. user interaction is a synchronization factor (a priority input).

Execution model
---------------
Every client site replicates the same presentation net (tele-teaching:
all clients render the lecture).  Each site has a drifting local clock
and evaluates the presentation timeline on it: the site starts the
presentation when *its* clock reads the announced start time, and each
place duration elapses in local seconds.  A site whose clock is ahead
therefore reaches every transition early in true time; a slow site
reaches it late.

With global-clock admission enabled, each firing passes Section 3's
rule: a **fast** client's transition "will not fire until global clock
arrives" at the transition's authored schedule time; a **slow** client's
transition "will be fire without delay".  The authored schedule time of
each transition is computed once from an ideal (drift-free) rehearsal
run of the same net.

User interactions (the floor-controlled events of Section 3) are
injected as priority tokens and carry "the same highest priority" as
the global clock — they are never held by admission.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clock.drift import DriftingClock
from ..clock.sync import GlobalClockAdmission
from ..clock.virtual import VirtualClock
from ..errors import PetriNetError
from ..media.playout import PlayoutLog
from .net import PetriNet
from .ocpn import OCPN
from .priority import PriorityNet, PriorityTimedExecutor
from .timed import TimedExecutor, TimedPlaceMap

__all__ = [
    "DOCPNSite",
    "DOCPNSystem",
    "ideal_schedule",
    "replicate_ocpn_with_interaction",
]


def ideal_schedule(ocpn: OCPN) -> dict[str, float]:
    """The authored firing time of every transition of ``ocpn``.

    Obtained from a drift-free rehearsal run on a scratch clock; this is
    the timeline the DMPS server distributes with the presentation.
    Transitions that fire more than once keep their first firing time.
    """
    rehearsal = _copy_net(ocpn.net)
    executor = TimedExecutor(rehearsal, ocpn.durations, VirtualClock())
    trace = executor.run_to_completion()
    schedule: dict[str, float] = {}
    for record in trace.firings:
        schedule.setdefault(record.transition, record.time)
    return schedule


def _copy_net(source: PetriNet) -> PetriNet:
    copy = PetriNet(source.name + "-rehearsal")
    for name, place in source.places.items():
        copy.add_place(name, tokens=source.tokens(name), label=place.label)
    for name, transition in source.transitions.items():
        copy.add_transition(name, label=transition.label)
    for transition in source.transitions:
        for place, weight in source.inputs(transition).items():
            copy.add_arc(place, transition, weight)
        for place, weight in source.outputs(transition).items():
            copy.add_arc(transition, place, weight)
    return copy


def replicate_ocpn_with_interaction(
    ocpn: OCPN,
    interaction_transitions: list[str] | None = None,
) -> tuple[PriorityNet, TimedPlaceMap, dict[str, str]]:
    """Convert an OCPN into a priority net with interaction places.

    For each transition named in ``interaction_transitions`` a fresh
    priority place ``ui_<transition>`` is attached, so injecting a token
    there force-fires the transition (skip / advance interactions,
    DOCPN property 5).

    Returns ``(priority_net, durations, interaction_place_of)``.
    """
    source = ocpn.net
    net = PriorityNet(source.name + "-docpn")
    for name, place in source.places.items():
        net.add_place(name, tokens=source.tokens(name), label=place.label)
    for name, transition in source.transitions.items():
        net.add_transition(name, label=transition.label)
    for transition in source.transitions:
        for place, weight in source.inputs(transition).items():
            net.add_arc(place, transition, weight)
        for place, weight in source.outputs(transition).items():
            net.add_arc(transition, place, weight)
    interaction_place_of: dict[str, str] = {}
    for transition in interaction_transitions or []:
        if transition not in source.transitions:
            raise PetriNetError(f"unknown transition {transition!r}")
        place = f"ui_{transition}"
        net.add_place(place, label="interaction")
        net.add_priority_arc(place, transition)
        interaction_place_of[transition] = place
    return net, ocpn.durations, interaction_place_of


class _GatedExecutor(PriorityTimedExecutor):
    """A :class:`PriorityTimedExecutor` whose plain firings pass the
    global-clock admission gate.

    Plain firings of transitions with an authored schedule time are
    held until the global clock reaches that time (fast sites wait,
    slow sites pass straight through).  Forced (priority) firings
    bypass the gate — the paper gives granted interactions "the same
    highest priority" as the global clock — and *shift* the authored
    schedule of everything downstream: after a skip fires 3 s early,
    the remaining timeline is expected 3 s early too.

    Deferred firings re-check readiness when they come due;
    presentation nets are marked graphs (conflict-free), so deferral
    cannot steal tokens from rival transitions.
    """

    def __init__(
        self,
        *args,
        admission: GlobalClockAdmission | None = None,
        local_clock: DriftingClock | None = None,
        schedule: dict[str, float] | None = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self._admission = admission
        self._local_clock = local_clock
        self._schedule = schedule or {}
        self._held: set[str] = set()
        self.schedule_shift = 0.0
        self.holds = 0
        self.total_hold = 0.0

    @property
    def started(self) -> bool:
        return self._started

    def _effective_schedule(self, transition: str) -> float | None:
        authored = self._schedule.get(transition)
        if authored is None:
            return None
        return authored + self.schedule_shift

    def _fire(self, transition: str, forced: bool) -> None:
        now = self.clock.now()
        if forced:
            scheduled = self._effective_schedule(transition)
            if scheduled is not None and now < scheduled:
                # The interaction moved the timeline earlier; everything
                # downstream is now expected earlier by the same amount.
                self.schedule_shift += now - scheduled
            super()._fire(transition, forced)
            return
        if self._admission is None or self._local_clock is None:
            super()._fire(transition, forced)
            return
        scheduled = self._effective_schedule(transition)
        if scheduled is None:
            scheduled = self._local_clock.now()
        decision = self._admission.admit(self._local_clock, scheduled)
        release = decision.release_global_time
        if release <= now:
            super()._fire(transition, forced)
            return
        self.holds += 1
        self.total_hold += release - now
        self._held.add(transition)
        self.clock.call_at(release, self._fire_held, transition)

    def _fire_held(self, transition: str) -> None:
        self._held.discard(transition)
        priority_ok = self._priority_ready(transition)
        plain_ok = self._plain_ready(transition)
        if priority_ok or plain_ok:
            super()._fire(transition, forced=priority_ok and not plain_ok)
        self._fire_enabled()

    def _priority_ready(self, transition: str) -> bool:
        if transition in self._held:
            return False
        return super()._priority_ready(transition)

    def _plain_ready(self, transition: str) -> bool:
        if transition in self._held:
            return False
        return super()._plain_ready(transition)


@dataclass
class DOCPNSite:
    """One client site executing the replicated presentation net."""

    name: str
    local_clock: DriftingClock
    executor: _GatedExecutor
    interaction_place_of: dict[str, str] = field(default_factory=dict)

    def inject_interaction(self, transition: str) -> None:
        """Deliver a user interaction targeting ``transition``."""
        place = self.interaction_place_of.get(transition)
        if place is None:
            raise PetriNetError(
                f"transition {transition!r} has no interaction place on "
                f"site {self.name!r}"
            )
        self.executor.inject_priority(place)

    @property
    def holds(self) -> int:
        return self.executor.holds

    @property
    def forced_firings(self) -> int:
        return self.executor.forced_firings


class DOCPNSystem:
    """A server global clock plus N replicated client sites.

    Parameters
    ----------
    clock:
        The true/virtual clock; it *is* the server's global clock.
    use_global_clock:
        Toggle for the E1/E8 ablation: when ``False``, sites free-run on
        their local clocks (the OCPN baseline behaviour).
    start_time:
        Authored global time at which the presentation begins.  Must be
        large enough that no site's local start maps to the virtual
        past (i.e. ``start_time >= max positive clock offset``).
    """

    def __init__(
        self,
        clock: VirtualClock,
        use_global_clock: bool = True,
        start_time: float = 5.0,
    ) -> None:
        self.clock = clock
        self.use_global_clock = use_global_clock
        self.start_time = start_time
        self.admission = GlobalClockAdmission(clock)
        self.sites: list[DOCPNSite] = []
        # Skip interactions can re-fire a section boundary when the
        # preempted branch completes; the log keeps the first start.
        self.playout = PlayoutLog(allow_restarts=True)
        self._schedules: dict[int, dict[str, float]] = {}

    def add_site(
        self,
        name: str,
        ocpn: OCPN,
        clock_offset: float = 0.0,
        drift_rate: float = 0.0,
        interaction_transitions: list[str] | None = None,
    ) -> DOCPNSite:
        """Create a site replicating ``ocpn`` with its own local clock."""
        local_clock = DriftingClock(
            self.clock, offset=clock_offset, drift_rate=drift_rate
        )
        net, durations, interaction_place_of = replicate_ocpn_with_interaction(
            ocpn, interaction_transitions
        )
        schedule = self._schedules.get(id(ocpn))
        if schedule is None:
            schedule = {
                transition: self.start_time + time
                for transition, time in ideal_schedule(ocpn).items()
            }
            self._schedules[id(ocpn)] = schedule
        # Durations are authored in presentation seconds but elapse on
        # the local clock: convert to true seconds.
        local_durations = TimedPlaceMap(
            {place: duration / (1.0 + drift_rate) for place, duration in durations.items()}
        )

        site_holder: list[DOCPNSite] = []

        def on_fire(transition: str, at: float, forced: bool) -> None:
            site = site_holder[0]
            for place in net.base.outputs(transition):
                media = ocpn.media_of_place.get(place)
                if media is not None and media[1] == 0:
                    self.playout.record_start(site.name, media[0], at)

        executor = _GatedExecutor(
            net,
            local_durations,
            self.clock,
            on_fire=on_fire,
            admission=self.admission if self.use_global_clock else None,
            local_clock=local_clock,
            schedule=schedule,
        )
        site = DOCPNSite(
            name=name,
            local_clock=local_clock,
            executor=executor,
            interaction_place_of=interaction_place_of,
        )
        site_holder.append(site)
        self.sites.append(site)
        return site

    def add_late_site(
        self,
        name: str,
        ocpn: OCPN,
        clock_offset: float = 0.0,
        drift_rate: float = 0.0,
        interaction_transitions: list[str] | None = None,
    ) -> DOCPNSite:
        """Join a site *after* the presentation started and catch it up.

        A student connecting mid-lecture should land at the live
        position, not replay from the top.  The site replays the net
        with adjusted durations: media whose authored interval already
        ended get duration 0 (instant skip), the in-flight media gets
        its remaining duration, and future media keep their authored
        durations — the admission gate then holds the future transitions
        to the authored schedule as usual, so the late site is in sync
        from its first live media onward.
        """
        now = self.clock.now()
        if now <= self.start_time:
            return self.add_site(
                name,
                ocpn,
                clock_offset=clock_offset,
                drift_rate=drift_rate,
                interaction_transitions=interaction_transitions,
            )
        elapsed = now - self.start_time
        site = self.add_site(
            name,
            ocpn,
            clock_offset=clock_offset,
            drift_rate=drift_rate,
            interaction_transitions=interaction_transitions,
        )
        # Rebuild the site's durations from the rehearsal intervals.
        rehearsal = _copy_net(ocpn.net)
        executor = TimedExecutor(rehearsal, ocpn.durations, VirtualClock())
        trace = executor.run_to_completion()
        remaining = TimedPlaceMap()
        for place, duration in ocpn.durations.items():
            spans = trace.intervals.get(place, [])
            if not spans:
                remaining.set(place, duration / (1.0 + drift_rate))
                continue
            start, end = spans[0]
            if end <= elapsed:
                remaining.set(place, 0.0)
            elif start >= elapsed:
                remaining.set(place, duration / (1.0 + drift_rate))
            else:
                remaining.set(place, (end - elapsed) / (1.0 + drift_rate))
        site.executor.durations = remaining
        # The site starts right now, regardless of its local reading.
        self.clock.call_at(now, site.executor.start)
        return site

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule every site's local start.

        Each site begins when *its* clock reads :attr:`start_time`.
        The anchor is re-evaluated when it fires, so a clock-sync
        correction applied before the start moves the anchor with it
        (a slow client whose clock was stepped forward starts on time
        instead of late).
        """
        for site in self.sites:
            if site.executor.started:
                continue
            self._attempt_start(site)

    def _attempt_start(self, site: "DOCPNSite") -> None:
        if site.executor.started:
            return
        now = self.clock.now()
        if site.local_clock.now() >= self.start_time - 1e-9:
            site.executor.start()
            return
        # local.now() < start_time implies the local anchor is in the
        # future (the clock is monotonic in true time).
        local_anchor = site.local_clock.true_time_of(self.start_time)
        candidates = [local_anchor]
        if self.start_time > now:
            # Also check at the true start time: a clock-sync correction
            # before then would make the site ready exactly on time.
            candidates.append(self.start_time)
        when = max(now + 1e-9, min(candidates))
        self.clock.call_at(when, self._attempt_start, site)

    def run(self, until: float) -> None:
        """Start all sites (if needed) and run to virtual time ``until``."""
        self.start()
        self.clock.run_until(until)

    def broadcast_interaction(
        self, transition: str, network_latency: float = 0.0
    ) -> None:
        """Inject a user interaction on every site, optionally after a
        network delay (the floor-granted event of Section 3)."""
        for site in self.sites:
            if network_latency > 0:
                self.clock.call_later(
                    network_latency, site.inject_interaction, transition
                )
            else:
                site.inject_interaction(transition)

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def max_skew(self) -> float:
        """Worst inter-site start spread over all media."""
        return self.playout.max_skew()

    def mean_skew(self) -> float:
        """Average inter-site start spread over all media."""
        return self.playout.mean_skew()

    def total_holds(self) -> int:
        """Admission holds summed over every site."""
        return sum(site.holds for site in self.sites)
