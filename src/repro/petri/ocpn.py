"""Object Composition Petri Nets (Little & Ghafoor 1990).

OCPN is "a comprehensive model for specifying timing relations among
multimedia data" (paper, Section 1).  An OCPN is a timed Petri net whose
places are either *media places* (a media object playing for its
duration) or *delay places* (pure time fillers), and whose transitions
are instantaneous synchronization points.

This module builds OCPNs compositionally:

* :class:`OCPN` — a net plus its duration map and media labelling;
* :class:`Block` — a subnet delimited by an entry and an exit
  transition;
* :meth:`OCPN.media_block`, :meth:`OCPN.delay_block`,
  :meth:`OCPN.seq`, :meth:`OCPN.par` — the block algebra;
* :meth:`OCPN.relate` — the canonical construction for each of Allen's
  seven base relations, including the interval-splitting construction
  for ``OVERLAPS`` (a media place is split into consecutive *segments*
  that the playout layer re-joins into one continuous interval).

The result executes on :class:`~repro.petri.timed.TimedExecutor` (or its
prioritized/distributed descendants) and its trace can be validated
against the originating spec — the round trip exercised by the E7
benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from typing import TYPE_CHECKING

from ..errors import PetriNetError, TemporalError
from .net import PetriNet
from .timed import TimedPlaceMap

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..temporal.intervals import Relation

__all__ = ["Block", "OCPN"]

#: Delay epsilon under which delay places are elided entirely.
_ZERO = 1e-12


@dataclass(frozen=True)
class Block:
    """A subnet with a unique entry and exit transition.

    Firing ``entry`` starts the block's content; ``exit`` fires when the
    content completes.  Blocks compose with :meth:`OCPN.seq` and
    :meth:`OCPN.par`.
    """

    entry: str
    exit: str


class OCPN:
    """An Object Composition Petri Net under construction.

    Attributes
    ----------
    net:
        The underlying place/transition net.
    durations:
        Place durations (media playout times and delays).
    media_of_place:
        Maps each media place to ``(media_name, segment_index)``;
        segments arise from the ``OVERLAPS`` construction and are
        re-joined by :meth:`media_intervals`.
    """

    def __init__(self, name: str = "ocpn") -> None:
        self.net = PetriNet(name)
        self.durations = TimedPlaceMap()
        self.media_of_place: dict[str, tuple[str, int]] = {}
        self._ids = itertools.count()
        self._segment_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Primitive blocks
    # ------------------------------------------------------------------
    def media_block(self, media: str, duration: float) -> Block:
        """A block that plays ``media`` for ``duration`` seconds."""
        if duration < 0:
            raise TemporalError(f"media {media!r}: negative duration {duration!r}")
        return self._segment_chain(media, [duration])

    def delay_block(self, delay: float) -> Block:
        """A block that consumes ``delay`` seconds of pure time."""
        if delay < 0:
            raise TemporalError(f"negative delay {delay!r}")
        entry = self._new_transition("t_in")
        exit_ = self._new_transition("t_out")
        place = self._new_place("delay", delay)
        self.net.add_arc(entry, place)
        self.net.add_arc(place, exit_)
        return Block(entry, exit_)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def seq(self, *blocks: Block) -> Block:
        """Sequential composition: each block starts when the previous
        one exits (zero-duration link places between them)."""
        if not blocks:
            raise PetriNetError("seq() needs at least one block")
        for left, right in zip(blocks, blocks[1:]):
            link = self._new_place("link", 0.0)
            self.net.add_arc(left.exit, link)
            self.net.add_arc(link, right.entry)
        return Block(blocks[0].entry, blocks[-1].exit)

    def par(self, *blocks: Block) -> Block:
        """Parallel composition: a fork transition starts all blocks, a
        join transition waits for all of them (OCPN's "master" sync)."""
        if not blocks:
            raise PetriNetError("par() needs at least one block")
        if len(blocks) == 1:
            return blocks[0]
        fork = self._new_transition("t_fork")
        join = self._new_transition("t_join")
        for block in blocks:
            lead_in = self._new_place("fork", 0.0)
            lead_out = self._new_place("join", 0.0)
            self.net.add_arc(fork, lead_in)
            self.net.add_arc(lead_in, block.entry)
            self.net.add_arc(block.exit, lead_out)
            self.net.add_arc(lead_out, join)
        return Block(fork, join)

    # ------------------------------------------------------------------
    # Allen relation constructions
    # ------------------------------------------------------------------
    def relate(
        self,
        media_a: str,
        duration_a: float,
        media_b: str,
        duration_b: float,
        relation: "Relation",
        offset: float = 0.0,
    ) -> Block:
        """Build the canonical OCPN for ``media_a relation media_b``.

        ``offset`` parameterizes the relations that need one:

        * ``BEFORE`` — the gap between A's end and B's start;
        * ``OVERLAPS`` — how long A plays before B starts
          (``0 < offset < duration_a`` and
          ``duration_a - offset < duration_b`` must hold);
        * ``DURING`` — how long B plays before A starts
          (``offset >= 0`` and ``offset + duration_a <= duration_b``).

        Inverse relations are normalized by swapping operands.

        Raises
        ------
        TemporalError
            If the durations/offset cannot realize the relation.
        """
        from ..temporal.intervals import Relation  # local: avoids cycle

        base, swapped = relation.normalized()
        if swapped:
            media_a, media_b = media_b, media_a
            duration_a, duration_b = duration_b, duration_a
        if base is Relation.BEFORE:
            return self._build_before(media_a, duration_a, media_b, duration_b, offset)
        if base is Relation.MEETS:
            return self.seq(
                self.media_block(media_a, duration_a),
                self.media_block(media_b, duration_b),
            )
        if base is Relation.EQUALS:
            if abs(duration_a - duration_b) > _ZERO:
                raise TemporalError(
                    f"EQUALS requires equal durations, got "
                    f"{duration_a!r} and {duration_b!r}"
                )
            return self.par(
                self.media_block(media_a, duration_a),
                self.media_block(media_b, duration_b),
            )
        if base is Relation.STARTS:
            return self._build_starts(media_a, duration_a, media_b, duration_b)
        if base is Relation.FINISHES:
            return self._build_finishes(media_a, duration_a, media_b, duration_b)
        if base is Relation.DURING:
            return self._build_during(media_a, duration_a, media_b, duration_b, offset)
        if base is Relation.OVERLAPS:
            return self._build_overlaps(media_a, duration_a, media_b, duration_b, offset)
        raise TemporalError(f"unsupported relation {relation!r}")  # pragma: no cover

    def _build_before(
        self, media_a: str, da: float, media_b: str, db: float, gap: float
    ) -> Block:
        if gap <= 0:
            raise TemporalError(f"BEFORE requires a positive gap, got {gap!r}")
        return self.seq(
            self.media_block(media_a, da),
            self.delay_block(gap),
            self.media_block(media_b, db),
        )

    def _build_starts(self, media_a: str, da: float, media_b: str, db: float) -> Block:
        if da >= db - _ZERO:
            raise TemporalError(
                f"STARTS requires duration_a < duration_b, got {da!r} >= {db!r}"
            )
        padded_a = self.seq(self.media_block(media_a, da), self.delay_block(db - da))
        return self.par(padded_a, self.media_block(media_b, db))

    def _build_finishes(self, media_a: str, da: float, media_b: str, db: float) -> Block:
        if da >= db - _ZERO:
            raise TemporalError(
                f"FINISHES requires duration_a < duration_b, got {da!r} >= {db!r}"
            )
        delayed_a = self.seq(self.delay_block(db - da), self.media_block(media_a, da))
        return self.par(delayed_a, self.media_block(media_b, db))

    def _build_during(
        self, media_a: str, da: float, media_b: str, db: float, offset: float
    ) -> Block:
        if offset <= 0:
            raise TemporalError(f"DURING requires a positive offset, got {offset!r}")
        tail = db - da - offset
        if tail <= _ZERO:
            raise TemporalError(
                f"DURING requires offset + duration_a < duration_b "
                f"({offset!r} + {da!r} vs {db!r})"
            )
        framed_a = self.seq(
            self.delay_block(offset),
            self.media_block(media_a, da),
            self.delay_block(tail),
        )
        return self.par(framed_a, self.media_block(media_b, db))

    def _build_overlaps(
        self, media_a: str, da: float, media_b: str, db: float, offset: float
    ) -> Block:
        """Little & Ghafoor's interval-splitting construction.

        A is split into ``a1`` (length ``offset``) and ``a2``
        (``da - offset``); B into ``b1`` (``da - offset``, concurrent
        with ``a2``) and ``b2`` (the remainder)::

            t0 -> a1 -> t1 -> { a2 || b1 } -> t2 -> b2 -> t3
        """
        if not (0 < offset < da - _ZERO):
            raise TemporalError(
                f"OVERLAPS requires 0 < offset < duration_a, got "
                f"offset={offset!r}, duration_a={da!r}"
            )
        shared = da - offset
        tail = db - shared
        if tail <= _ZERO:
            raise TemporalError(
                f"OVERLAPS requires duration_b > duration_a - offset "
                f"({db!r} vs {da!r} - {offset!r})"
            )
        a1 = self._segment_chain(media_a, [offset])
        a2 = self._segment_chain(media_a, [shared])
        b1 = self._segment_chain(media_b, [shared])
        b2 = self._segment_chain(media_b, [tail])
        middle = self.par(a2, b1)
        return self.seq(a1, middle, b2)

    # ------------------------------------------------------------------
    # Root wiring and reconstruction helpers
    # ------------------------------------------------------------------
    def set_root(self, block: Block) -> None:
        """Mark ``block`` as the presentation root: adds the initial
        ``start`` place (one token) and the terminal ``done`` place."""
        if "start" in self.net.places or "done" in self.net.places:
            raise PetriNetError("root already set")
        self.net.add_place("start", tokens=1)
        self.net.add_place("done")
        self.net.add_arc("start", block.entry)
        self.net.add_arc(block.exit, "done")

    def media_intervals(
        self, intervals: dict[str, list[tuple[float, float]]]
    ) -> dict[str, tuple[float, float]]:
        """Re-join per-place activity intervals into one continuous
        interval per media object.

        ``intervals`` is :attr:`FiringTrace.intervals` from an executor
        run.  Segments produced by ``OVERLAPS`` splitting are merged;
        a gap between segments of the same media raises, because the
        construction guarantees continuity.
        """
        spans: dict[str, list[tuple[float, float]]] = {}
        for place, (media, __) in self.media_of_place.items():
            for span in intervals.get(place, []):
                spans.setdefault(media, []).append(span)
        merged: dict[str, tuple[float, float]] = {}
        for media, pieces in spans.items():
            pieces.sort()
            start, end = pieces[0]
            for piece_start, piece_end in pieces[1:]:
                if piece_start > end + 1e-6:
                    raise TemporalError(
                        f"media {media!r} has a playout gap at t={end!r}"
                    )
                end = max(end, piece_end)
            merged[media] = (start, end)
        return merged

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _segment_chain(self, media: str, segment_durations: list[float]) -> Block:
        """A seq chain of media segments for ``media``."""
        entry = self._new_transition("t_in")
        previous = entry
        for duration in segment_durations:
            index = self._segment_counts.get(media, 0)
            self._segment_counts[media] = index + 1
            place = self._new_place(f"m_{media}", duration, media=(media, index))
            self.net.add_arc(previous, place)
            next_transition = self._new_transition("t_out")
            self.net.add_arc(place, next_transition)
            previous = next_transition
        return Block(entry, previous)

    def _new_place(
        self,
        prefix: str,
        duration: float,
        media: tuple[str, int] | None = None,
    ) -> str:
        name = f"{prefix}#{next(self._ids)}"
        label = media[0] if media else None
        self.net.add_place(name, label=label)
        if duration > _ZERO:
            self.durations.set(name, duration)
        if media is not None:
            self.media_of_place[name] = media
        return name

    def _new_transition(self, prefix: str) -> str:
        name = f"{prefix}#{next(self._ids)}"
        self.net.add_transition(name)
        return name
