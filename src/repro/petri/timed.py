"""Timed Petri nets with durations attached to places.

OCPN-style timing (Little & Ghafoor): a token arriving in a place with
duration *d* is *locked* for *d* seconds — the place is "executing" its
media object — and only after the duration elapses does the token become
available to the place's output transitions.  Transitions themselves
fire instantaneously once all their input tokens are available, which is
exactly the paper's "waiting at a transition until all input signals
arrived, and then firing concurrently" (DOCPN property 1).

:class:`TimedExecutor` runs a :class:`~repro.petri.net.PetriNet` whose
places carry durations over a :class:`~repro.clock.virtual.VirtualClock`
and records a :class:`FiringTrace` that the scheduler
(:mod:`repro.temporal.schedule`) and benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..clock.virtual import VirtualClock
from ..errors import PetriNetError, UnknownNodeError
from .net import PetriNet

__all__ = ["TimedPlaceMap", "FiringRecord", "FiringTrace", "TimedExecutor"]


class TimedPlaceMap:
    """Durations for the places of a net.

    Places absent from the map are instantaneous (duration 0), which is
    how OCPN models control places (the small synchronization points
    between media places).
    """

    def __init__(self, durations: Mapping[str, float] | None = None) -> None:
        self._durations: dict[str, float] = {}
        if durations:
            for place, duration in durations.items():
                self.set(place, duration)

    def set(self, place: str, duration: float) -> None:
        """Assign a duration to a place (must be >= 0)."""
        if duration < 0:
            raise PetriNetError(
                f"duration for place {place!r} must be >= 0, got {duration!r}"
            )
        self._durations[place] = float(duration)

    def get(self, place: str) -> float:
        """The duration of a place (0.0 when unset)."""
        return self._durations.get(place, 0.0)

    def items(self):
        """Iterate ``(place, duration)`` pairs."""
        return self._durations.items()

    def __contains__(self, place: str) -> bool:
        return place in self._durations


@dataclass(frozen=True)
class FiringRecord:
    """One transition firing in a timed run."""

    time: float
    transition: str
    started_places: tuple[str, ...]


@dataclass
class FiringTrace:
    """Chronological record of a timed execution.

    ``intervals`` maps each place to the list of ``(start, end)``
    activity intervals its tokens spent locked (i.e. the media object's
    playout intervals).
    """

    firings: list[FiringRecord] = field(default_factory=list)
    intervals: dict[str, list[tuple[float, float]]] = field(default_factory=dict)

    def record_firing(self, time: float, transition: str, started: tuple[str, ...]) -> None:
        """Append one firing record."""
        self.firings.append(FiringRecord(time, transition, started))

    def record_interval(self, place: str, start: float, end: float) -> None:
        """Append one activity interval for a place."""
        self.intervals.setdefault(place, []).append((start, end))

    def firing_times(self, transition: str) -> list[float]:
        """All times a transition fired, in order."""
        return [record.time for record in self.firings if record.transition == transition]

    def start_times(self, place: str) -> list[float]:
        """Start times of a place's activity intervals."""
        return [start for start, __ in self.intervals.get(place, [])]

    def end_time(self) -> float:
        """Latest interval end or firing time in the trace."""
        latest = 0.0
        for record in self.firings:
            latest = max(latest, record.time)
        for spans in self.intervals.values():
            for __, end in spans:
                latest = max(latest, end)
        return latest


class TimedExecutor:
    """Earliest-firing-time execution of a duration-annotated net.

    Semantics
    ---------
    * A token deposited into place *p* at time *t* becomes *available*
      at ``t + duration(p)``; the interval ``[t, t + duration(p)]`` is
      recorded as activity of *p*.
    * A transition fires as soon as every input place has enough
      available tokens (weights honoured).
    * Among simultaneously-enabled transitions, firing order follows
      the net's transition insertion order (deterministic).

    The executor drives itself from clock callbacks: each token's
    availability is a scheduled event, after which enabled transitions
    fire exhaustively at that instant.
    """

    def __init__(
        self,
        net: PetriNet,
        durations: TimedPlaceMap,
        clock: VirtualClock,
        on_fire: Callable[[str, float], None] | None = None,
    ) -> None:
        self.net = net
        self.durations = durations
        self.clock = clock
        self.trace = FiringTrace()
        self._available: dict[str, int] = {}
        self._on_fire = on_fire
        self._started = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Deposit the net's initial marking at the current clock time."""
        if self._started:
            raise PetriNetError("executor already started")
        self._started = True
        now = self.clock.now()
        self._available = {name: 0 for name in self.net.places}
        for place, count in self.net.marking().items():
            for __ in range(count):
                self._deposit(place, now, pre_marked=True)
        # Tokens with zero duration may enable transitions immediately.
        self.clock.call_at(now, self._fire_enabled)

    def run_to_completion(self, max_time: float = 1e9) -> FiringTrace:
        """Start (if needed) and run until the net quiesces.

        Returns the trace.  ``max_time`` bounds runaway cyclic nets.
        """
        if not self._started:
            self.start()
        while True:
            upcoming = self.clock.next_event_time()
            if upcoming is None or upcoming > max_time:
                break
            self.clock.step()
        return self.trace

    def inject_token(self, place: str, count: int = 1) -> None:
        """External event: put tokens into a place at the current time.

        Used by the DOCPN engine for user-interaction places.
        """
        if place not in self.net.places:
            raise UnknownNodeError(f"unknown place {place!r}")
        now = self.clock.now()
        for __ in range(count):
            self.net.put_token(place)
            self._deposit(place, now, pre_marked=True)
        self.clock.call_at(now, self._fire_enabled)

    def available_tokens(self, place: str) -> int:
        """Tokens in ``place`` that are past their duration lock."""
        return self._available.get(place, 0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _deposit(self, place: str, now: float, pre_marked: bool = False) -> None:
        """A token enters ``place`` at ``now``; schedule its availability.

        ``pre_marked`` distinguishes tokens already counted in the net's
        marking (initial marking / injections) from tokens produced by a
        firing, which must also be added to the marking.
        """
        if not pre_marked:
            self.net.put_token(place)
        duration = self.durations.get(place)
        release = now + duration
        self.trace.record_interval(place, now, release)
        if duration == 0:
            self._available[place] = self._available.get(place, 0) + 1
        else:
            self.clock.call_at(release, self._release, place)

    def _release(self, place: str) -> None:
        self._available[place] = self._available.get(place, 0) + 1
        self._fire_enabled()

    def _fire_enabled(self) -> None:
        """Fire transitions exhaustively at the current instant."""
        fired = True
        while fired:
            fired = False
            for transition in self.net.transitions:
                if self._timed_enabled(transition):
                    self._fire(transition)
                    fired = True

    def _timed_enabled(self, transition: str) -> bool:
        for place, weight in self.net.inputs(transition).items():
            if self._available.get(place, 0) < weight:
                return False
        return True

    def _fire(self, transition: str) -> None:
        now = self.clock.now()
        for place, weight in self.net.inputs(transition).items():
            self._available[place] -= weight
            self.net.take_token(place, weight)
        started = tuple(self.net.outputs(transition))
        for place, weight in self.net.outputs(transition).items():
            for __ in range(weight):
                self._deposit(place, now)
        self.trace.record_firing(now, transition, started)
        self.net._fire_count += 1
        if self._on_fire is not None:
            self._on_fire(transition, now)
