"""The :class:`Session` facade — one object that owns a DMPS session.

A session composes (never replaces) the lower layers: the shared
:class:`~repro.clock.virtual.VirtualClock`, the
:class:`~repro.net.simnet.Network`, one
:class:`~repro.session.dmps.DMPSServer`, and one
:class:`~repro.session.dmps.DMPSClient` per participant, already
joined and heartbeating by the time :meth:`Session.build` returns.
All the common verbs live directly on the facade::

    with Session.build("alice", "bob", chair="teacher") as s:
        s.post("alice", "hi everyone")
        s.run_until(2.0)
        s.set_mode("equal_control")
        s.request_floor("alice")
        s.run_for(0.5)
        print(s.report().render())

The underlying objects stay reachable (``s.server``, ``s.clients``,
``s.clock``, ``s.network``, ``s.dynamics``) for anything the facade
does not cover.

Time-varying network behaviour (:mod:`repro.net.dynamics`) is part of
the facade: declare it up front with the builder's ``loss_burst`` /
``delay_ramp`` / ``partition_window`` knobs, or script it mid-session
with the ``degrade_link`` / ``partition`` / ``heal`` / ``churn`` verbs
(all reachable from :class:`~repro.api.scenario.Scenario` steps).

Runtime verification (:mod:`repro.check.monitor`) is part of it too:
``SessionConfig.checks`` (builder knob ``checks(...)``) attaches a
:class:`~repro.check.monitor.SessionMonitor` re-checking named
invariants on every floor event, the scripted ``assert_invariant``
verb checks one on the spot, and violations land in the report.
"""

from __future__ import annotations

import random
from pathlib import Path

from ..check.monitor import SessionMonitor, evaluate_invariant
from ..clock.virtual import VirtualClock
from ..core.events import EventLog
from ..core.modes import FCMMode
from ..errors import CheckError, SessionError
from ..metrics.fold import SESSION_FOLD_KINDS, MetricsFold
from ..net.dynamics import NetworkDynamics
from ..net.simnet import Network
from ..session.dmps import DMPSClient, DMPSServer
from ..session.presence import PresenceMonitor
from ..session.report import SessionReport, summarize
from ..session.whiteboard import Whiteboard
from .config import (
    DynamicsSpec,
    ParticipantSpec,
    PartitionSpec,
    SessionBuilder,
    SessionConfig,
)
from .policies import resolve_mode

__all__ = ["Session"]


class Session:
    """A fully wired DMPS session (star topology, joined, settled).

    Construct through :meth:`build` / :meth:`builder` rather than
    directly; the constructor expects a validated
    :class:`~repro.api.config.SessionConfig`.
    """

    def __init__(self, config: SessionConfig) -> None:
        config.validate()
        self.config = config
        self.clock = VirtualClock()
        self.network = Network(self.clock, rng=random.Random(config.seed + 1))
        self.server = DMPSServer(
            self.clock,
            self.network,
            host_name=config.server_host,
            chair=config.chair,
            resources=config.resources.to_model(),
            presence_timeout=config.presence_timeout,
            log_capacity=config.transcript_capacity,
        )
        if config.engine == "compiled":
            # Swap in the array-compiled batch arbitration before any
            # member joins: nothing has been arbitrated yet, so the
            # replacement starts from the exact same (empty) state the
            # reference arbitrator would.  Decisions, stats and the
            # transcript stay byte-identical (tests pin this).
            from ..engine import CompiledArbitrator

            control = self.server.control
            control.arbitrator = CompiledArbitrator(
                control.registry, control.resources
            )
        if config.presence_sweep is not None:
            self.server.presence.sweep_interval = config.presence_sweep
        self.dynamics = NetworkDynamics(
            self.network, rng=random.Random(config.seed + 2)
        )
        self._clients: dict[str, DMPSClient] = {}
        self._departed: dict[str, DMPSClient] = {}
        self._closed = False
        #: The live metrics fold (:mod:`repro.metrics`): subscribed to
        #: the bus before any member joins, so it sees every floor
        #: event of the session's lifetime — ring-mode eviction can
        #: drop transcript events, never metrics.  The session report
        #: reads this state instead of re-counting the log.
        self.metrics = MetricsFold(mode=config.metrics_mode)
        self.bus.subscribe(self.metrics.add, kinds=SESSION_FOLD_KINDS)
        #: The runtime invariant monitor (``None`` unless the config
        #: names ``checks``).  Attached before any event fires so even
        #: the join handshakes are checked.
        self.monitor: SessionMonitor | None = None
        if config.checks:
            self.monitor = SessionMonitor(
                self, config.checks, sweep_interval=config.check_sweep
            )
        for spec in config.participants:
            self._connect(spec)
        for spec in config.participants:
            self._start_participant(spec.name)
        # Dynamics are scheduled before the warmup runs so profiles and
        # partition windows written against t=0 cover the whole run.
        for dynamic in config.dynamics:
            self._apply_dynamics(dynamic)
        self.clock.run_until(config.join_warmup)
        if config.mode is not FCMMode.FREE_ACCESS:
            self.server.set_mode(config.mode, by=config.chair)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def builder(cls, chair: str = "teacher", chair_joins: bool = True) -> SessionBuilder:
        """A fluent :class:`~repro.api.config.SessionBuilder`."""
        return SessionBuilder(chair=chair, chair_joins=chair_joins)

    @classmethod
    def build(
        cls,
        *participants: str,
        chair: str = "teacher",
        latency: float | None = None,
        jitter: float | None = None,
        loss: float | None = None,
        bandwidth_kbps: float | None = None,
        policy: FCMMode | str = FCMMode.FREE_ACCESS,
        seed: int = 0,
        heartbeats: float | None = 0.25,
        clock_sync: float | None = None,
        warmup: float = 1.0,
        presence_timeout: float = 1.0,
    ) -> "Session":
        """One-call construction for the common case: the named
        participants (plus the chair) on identical links."""
        builder = (
            cls.builder(chair=chair)
            .link(latency=latency, jitter=jitter, loss=loss,
                  bandwidth_kbps=bandwidth_kbps)
            .policy(policy)
            .seed(seed)
            .heartbeats(heartbeats)
            .clock_sync(clock_sync)
            .warmup(warmup)
            .presence(timeout=presence_timeout)
        )
        builder.participants(*participants)
        return builder.build()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Stop every periodic loop (heartbeats, clock sync, presence
        sweep, self-rescheduling dynamics profiles) so the event queue
        can drain.

        Idempotent and reentrant: the closed flag is set *before* any
        teardown runs, so repeated calls — including a shard tearing
        down a fleet of sessions where one ``close`` indirectly
        triggers another — never double-stop the loops.
        """
        if self._closed:
            return
        self._closed = True
        for client in self._clients.values():
            client.stop_heartbeats()
            client.stop_clock_sync()
        self.server.presence.stop()
        self.dynamics.cancel_profiles()
        if self.monitor is not None:
            self.monitor.stop()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current global virtual time."""
        return self.clock.now()

    def run_until(self, deadline: float) -> int:
        """Run queued events up to an absolute virtual time."""
        return self.clock.run_until(deadline)

    def run_for(self, delta: float) -> int:
        """Run queued events for a further ``delta`` virtual seconds."""
        return self.clock.advance(delta)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def client(self, member: str) -> DMPSClient:
        """The client endpoint of a participant.

        Raises
        ------
        SessionError
            For a name that was never part of this session.
        """
        if member not in self._clients:
            raise SessionError(f"no participant {member!r} in this session")
        return self._clients[member]

    @property
    def clients(self) -> dict[str, DMPSClient]:
        """Name -> client endpoint (a copy)."""
        return dict(self._clients)

    def members(self) -> list[str]:
        """Members that completed the join handshake with the server."""
        return self.server.members()

    def join(self, member: str, spec: ParticipantSpec | None = None) -> DMPSClient:
        """Late-join a participant: wire their link, send the Hello,
        start the configured loops.  A member who previously
        :meth:`leave`-d rejoins on their original station (``spec`` is
        ignored for them).  Advance the clock (e.g. :meth:`run_for`) to
        let the handshake complete."""
        if member in self._clients:
            raise SessionError(f"participant {member!r} already in the session")
        if member in self._departed:
            client = self._departed.pop(member)
            self._clients[member] = client
            self.network.set_host_up(client.host_name, True)
        else:
            spec = spec if spec is not None else ParticipantSpec(name=member)
            if spec.name != member:
                raise SessionError(
                    f"spec is for {spec.name!r}, not for joining member {member!r}"
                )
            self._connect(spec)
        self._start_participant(member)
        return self._clients[member]

    def leave(self, member: str) -> None:
        """Remove a participant: stop their loops, take their host down,
        release any floor they hold, and drop them from the roster
        (rejoinable later via :meth:`join`)."""
        client = self.client(member)
        client.stop_heartbeats()
        client.stop_clock_sync()
        self.network.set_host_up(client.host_name, False)
        self.server.leave(member)
        self._departed[member] = self._clients.pop(member)

    def disconnect(self, member: str) -> None:
        """Simulate losing a client (Figure 3's red-light scenario)."""
        self.client(member).disconnect()

    def reconnect(self, member: str) -> None:
        """Bring a disconnected client back, resuming heartbeats only
        when the session is configured to run them."""
        client = self.client(member)
        if self.config.heartbeat_interval is not None:
            client.reconnect(self.config.heartbeat_interval)
        else:
            self.network.set_host_up(client.host_name, True)

    # ------------------------------------------------------------------
    # Network dynamics
    # ------------------------------------------------------------------
    def degrade_link(
        self,
        member: str,
        *,
        latency: float | None = None,
        jitter: float | None = None,
        loss: float | None = None,
        bandwidth_kbps: float | None = None,
    ) -> None:
        """Change a member's star-link parameters right now (both
        directions); only the named fields change.  Scriptable:
        ``at(8.0, "degrade_link", "alice", loss=0.5)``."""
        client = self.client(member)
        self.dynamics.degrade(
            self.config.server_host,
            client.host_name,
            latency=latency,
            jitter=jitter,
            loss=loss,
            bandwidth_kbps=bandwidth_kbps,
        )

    def partition(self, *members: str) -> None:
        """Cut the named members (default: everyone but the chair) off
        from the server until :meth:`heal`.  Their hosts stay up — only
        the wires are cut, so messages count as ``blocked``, not
        ``to_down_host``.  Scriptable: ``at(8.0, "partition")``."""
        names = members if members else tuple(
            name for name in self._clients if name != self.config.chair
        )
        hosts = {self.client(name).host_name for name in names}
        self.dynamics.partition(hosts, {self.config.server_host})

    def heal(self) -> None:
        """Restore every link cut by :meth:`partition` (or by a
        configured :class:`~repro.api.config.PartitionSpec`)."""
        self.dynamics.heal()

    def churn(self, member: str, rejoin_after: float | None = None) -> None:
        """Host churn: the member leaves now and, with ``rejoin_after``,
        automatically rejoins that many virtual seconds later (on their
        original station).  A member who already rejoined by then (e.g.
        via an explicit :meth:`join`) is left alone.  Scriptable:
        ``at(5.0, "churn", "bob", rejoin_after=4.0)``."""
        if rejoin_after is not None and rejoin_after <= 0:
            raise SessionError(
                f"rejoin_after must be positive, got {rejoin_after!r}"
            )
        self.leave(member)
        if rejoin_after is not None:
            self.clock.call_later(rejoin_after, self._rejoin, member)

    def _rejoin(self, member: str) -> None:
        # A no-op once the member is already back or the session closed
        # (a rejoin must not restart loops close() just stopped).
        if self._closed or member in self._clients:
            return
        self.join(member)

    # ------------------------------------------------------------------
    # Floor control and boards
    # ------------------------------------------------------------------
    def set_mode(
        self,
        mode: FCMMode | str,
        by: str | None = None,
        group: str | None = None,
    ) -> None:
        """Change the floor mode (by policy name or mode); ``by``
        defaults to the session chair."""
        self.server.set_mode(
            resolve_mode(mode),
            by=by if by is not None else self.config.chair,
            group=group,
        )

    def request_floor(
        self,
        member: str,
        mode: FCMMode | None = None,
        group: str | None = None,
        target_member: str | None = None,
        target_group: str | None = None,
    ) -> None:
        """Send a member's floor request (decision arrives over the
        network; see ``client(member).decisions``)."""
        self.client(member).request_floor(
            mode=mode,
            group=group,
            target_member=target_member,
            target_group=target_group,
        )

    def release_floor(
        self,
        member: str,
        group: str | None = None,
        successor: str | None = None,
    ) -> None:
        """Send a member's floor release (token passes on arrival)."""
        self.client(member).release_floor(group=group, successor=successor)

    def post(
        self,
        member: str,
        content: str,
        kind: str = "message",
        group: str | None = None,
    ) -> None:
        """Send a member's message/annotation to a group's board."""
        self.client(member).post(content, kind=kind, group=group)

    def open_discussion(self, creator: str, invitees: tuple[str, ...] = ()) -> str:
        """Create a discussion subgroup server-side and invite members;
        returns the new group id."""
        group_id = self.server.open_discussion(creator)
        for invitee in invitees:
            self.server.invite(group_id, creator, invitee)
        return group_id

    def open_direct_contact(self, initiator: str, peer: str) -> str:
        """Create a private two-person window; returns the group id."""
        return self.server.open_direct_contact(initiator, peer)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def board(self, group: str | None = None) -> Whiteboard:
        """The server's authoritative whiteboard of a group."""
        return self.server.board(group)

    @property
    def log(self) -> EventLog:
        """The server's floor-control event log (the transcript)."""
        return self.server.control.log

    @property
    def bus(self) -> EventLog:
        """The session's event bus (:mod:`repro.events`) — the same
        object as :attr:`log`, under the redesigned subsystem's name:
        indexed queries, filtered ``subscribe``, ``save``/``load``."""
        return self.server.control.log

    def save_transcript(self, path) -> Path:
        """Persist the session transcript as a replayable JSONL file.

        The metadata block records what the live run concluded from the
        events — transcript metrics, stream-check verdicts, and the
        attached monitor's invariant summary when checks are configured
        — so ``repro replay`` can later reproduce the run's numbers
        byte-identically from the file alone.  Returns the path
        written.
        """
        from ..events.replay import build_meta
        from ..events.transcript import save_transcript

        # One snapshot serves both the metadata and the file, so the
        # recorded blocks can never drift from the persisted events.
        events = list(self.bus)
        meta = build_meta(
            events,
            monitor=self.monitor,
            extra={
                "session": {
                    "chair": self.config.chair,
                    "members": sorted(self._clients),
                    "policy": self.config.mode.value,
                    "seed": self.config.seed,
                    "duration": self.clock.now(),
                    "listener_errors": self.bus.listener_error_count,
                }
            },
        )
        return save_transcript(path, events, meta=meta)

    def tracer(self):
        """The causal plane of this session, on demand.

        Builds a :class:`~repro.trace.causal.CausalTracer` over the
        retained transcript (plus the monitor's recorded violations as
        instant spans) — a pure read: nothing subscribes, nothing is
        buffered while the session runs, and two calls yield identical
        spans.  The tracer is seeded with the session seed, so span
        ids are stable across reruns of the same configuration.
        """
        from ..trace import CausalTracer

        tracer = CausalTracer.from_events(
            list(self.bus), seed=self.config.seed
        )
        if self.monitor is not None:
            tracer.add_violations(self.monitor.violations)
        return tracer

    def save_trace(self, path) -> Path:
        """Persist the causal plane as a ``TRACE_*.json`` document.

        The metadata carries only the session seed — everything else
        in the document is a deterministic function of the transcript,
        which keeps the bytes reproducible from a saved transcript
        alone (``repro trace record``).  Returns the path written.
        """
        from ..trace import save_trace

        return save_trace(
            path,
            self.tracer().spans(),
            meta={"seed": self.config.seed},
        )

    @property
    def presence(self) -> PresenceMonitor:
        """The server's presence monitor (connection lights)."""
        return self.server.presence

    def assert_invariant(self, name: str) -> None:
        """Check one named invariant (:mod:`repro.check.monitor`) right
        now; scriptable as ``at(8.0, "assert_invariant",
        name="single_speaker")``.

        The violation (if any) is recorded on the session monitor when
        one is attached — even for a name outside the monitor's own
        configured set — then raised.

        Raises
        ------
        CheckError
            With the violation detail, or for an unknown name.
        """
        detail = evaluate_invariant(name, self)
        if self.monitor is not None:
            if detail is not None:
                self.monitor.record_external(name, detail)
            else:
                # A passing spot check ends any episode this monitor
                # could not end itself (names outside its own set).
                self.monitor.clear_episodes(name)
        if detail is not None:
            raise CheckError(
                f"invariant {name!r} violated at t={self.now():.3f}: {detail}"
            )

    def report(self, trace: bool = False) -> SessionReport:
        """Aggregate every layer's counters into a
        :class:`~repro.session.report.SessionReport` (including the
        monitor's invariant violations when checks are attached).
        ``trace=True`` also folds the causal plane in, adding the
        report's trace line (span count per kind)."""
        return summarize(
            self.server,
            list(self._clients.values()),
            monitor=self.monitor,
            metrics=self.metrics,
            tracer=self.tracer() if trace else None,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _connect(self, spec: ParticipantSpec) -> None:
        client = DMPSClient(
            spec.name,
            spec.host_name,
            self.network,
            server_host=self.config.server_host,
            clock_offset=spec.clock_offset,
            drift_rate=spec.drift_rate,
        )
        link = spec.link if spec.link is not None else self.config.link
        self.network.connect_both(
            self.config.server_host, spec.host_name, link.to_link()
        )
        self._clients[spec.name] = client

    def _apply_dynamics(self, dynamic: DynamicsSpec | PartitionSpec) -> None:
        hosts_of = {
            spec.name: spec.host_name for spec in self.config.participants
        }
        if isinstance(dynamic, PartitionSpec):
            members = dynamic.members or tuple(
                name for name in hosts_of if name != self.config.chair
            )
            self.dynamics.partition(
                {hosts_of[name] for name in members},
                {self.config.server_host},
                at=dynamic.start,
                heal_at=dynamic.heal_at,
            )
            return
        members = dynamic.members or tuple(hosts_of)
        for name in members:
            self.dynamics.apply(
                dynamic.profile, self.config.server_host, hosts_of[name]
            )

    def _start_participant(self, member: str) -> None:
        client = self._clients[member]
        client.join(is_chair=(member == self.config.chair))
        if self.config.heartbeat_interval is not None:
            client.start_heartbeats(self.config.heartbeat_interval)
        if self.config.clock_sync_interval is not None:
            client.start_clock_sync(interval=self.config.clock_sync_interval)
