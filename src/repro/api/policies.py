"""Pluggable floor policies behind one registry.

The paper's four FCM modes and the two ablation baselines
(:class:`~repro.baselines.fifo_floor.FIFOFloorControl`,
:class:`~repro.baselines.free_for_all.FreeForAll`) used to live on
parallel code paths with incompatible interfaces.  This module unifies
them behind the :class:`FloorPolicy` protocol —

    ``request(member, now) -> granted?``
    ``release(member, now) -> new holder``
    ``speakers() -> set`` / ``waiting() -> list``

— and a name registry, so benchmarks and the CLI compare policies *by
name* (``make_policy("fifo")`` vs ``make_policy("equal_control")``)
instead of hand-wiring each implementation.

The four mode policies are backed by the real
:class:`~repro.core.server.FloorControlServer` arbitration (they are
the paper's code path, not re-implementations); the baseline policies
adapt the existing baseline classes, which remain importable unchanged.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from ..baselines.fifo_floor import FIFOFloorControl
from ..baselines.free_for_all import FreeForAll
from ..clock.virtual import VirtualClock
from ..core.events import EventKind, EventLog
from ..core.floor import RequestOutcome
from ..core.modes import FCMMode
from ..core.resources import ResourceModel, ResourceVector
from ..core.server import FloorControlServer
from ..errors import FloorControlError, ReproError

__all__ = [
    "FloorPolicy",
    "ArbitratedPolicy",
    "FIFOPolicy",
    "FreeForAllPolicy",
    "register_policy",
    "unregister_policy",
    "make_policy",
    "policy_names",
    "resolve_mode",
]


@runtime_checkable
class FloorPolicy(Protocol):
    """The uniform floor-control interface every policy implements."""

    @property
    def name(self) -> str:
        """Registry name of this policy (round-trips via the registry)."""
        ...

    def request(self, member: str, now: float = 0.0) -> bool:
        """Ask for the floor; ``True`` when granted immediately."""
        ...

    def release(self, member: str, now: float = 0.0) -> str | None:
        """Give up the floor; returns the successor (if any)."""
        ...

    def speakers(self) -> set[str]:
        """Members currently allowed to deliver."""
        ...

    def waiting(self) -> list[str]:
        """Members queued for the floor, FIFO order."""
        ...


class ArbitratedPolicy:
    """One FCM mode, driven by the paper's real arbitration machinery.

    The policy owns a private :class:`FloorControlServer` with generous
    resources; members are registered on first use, so the policy can be
    driven exactly like the baselines.  Standalone conventions for the
    subgroup modes (documented interpretation, not in the paper):

    * *group discussion* — requesters are auto-invited into one shared
      discussion subgroup chaired by the session chair;
    * *direct contact* — the peer defaults to the session chair; the
      chair's own requests need an explicit ``target_member``.
    """

    def __init__(
        self,
        mode: FCMMode,
        chair: str = "teacher",
        log_capacity: int | None = None,
        clock: VirtualClock | None = None,
    ) -> None:
        self.mode = mode
        #: Private by default; callers that *drive* time (the live
        #: serving layer paces it against the wall clock, lockstep
        #: soaks advance it per round) pass their own clock in.
        self._clock = clock if clock is not None else VirtualClock()
        self.server = FloorControlServer(
            self._clock,
            ResourceModel(
                ResourceVector(network_kbps=1e6, cpu_share=64.0, memory_mb=1e5)
            ),
            chair=chair,
            log_capacity=log_capacity,
        )
        self.server.set_mode(self.server.session_group, mode, by=chair)
        self._discussion: str | None = None
        self._contact_pairs: list[tuple[str, str]] = []

    @property
    def name(self) -> str:
        """Registry name — the mode's wire value."""
        return self.mode.value

    def request(
        self,
        member: str,
        now: float = 0.0,
        target_member: str | None = None,
        target_group: str | None = None,
    ) -> bool:
        """Arbitrate one floor request; ``True`` when granted."""
        self._ensure_member(member)
        if self.mode is FCMMode.GROUP_DISCUSSION and target_group is None:
            target_group = self._shared_discussion(member)
        if self.mode is FCMMode.DIRECT_CONTACT and target_member is None:
            if member == self.server.chair:
                return False  # the chair must name a peer explicitly
            target_member = self.server.chair
        grant = self.server.request_floor(
            member,
            mode=self.mode,
            target_member=target_member,
            target_group=target_group,
            requested_at=now,
        )
        if (
            grant.outcome is RequestOutcome.GRANTED
            and self.mode is FCMMode.DIRECT_CONTACT
        ):
            self._contact_pairs.append((member, target_member or ""))
        return grant.outcome is RequestOutcome.GRANTED

    def request_batch(self, submissions: list[tuple[str, float]]) -> list[bool]:
        """Arbitrate one tick's requests together (the fleet hot path).

        ``submissions`` is ``(member, now)`` pairs in arrival order.
        Decisions match calling :meth:`request` per pair; the session
        modes (free access / equal control) route through
        :meth:`FloorControlServer.request_floor_batch` and the
        arbitrator's batch seam, while the subgroup modes — whose
        per-request target resolution is inherently sequential — fall
        back to the per-call path.
        """
        if self.mode in (FCMMode.GROUP_DISCUSSION, FCMMode.DIRECT_CONTACT):
            return [self.request(member, now) for member, now in submissions]
        for member, _ in submissions:
            self._ensure_member(member)
        grants = self.server.request_floor_batch(
            [(member, self.mode, now) for member, now in submissions]
        )
        return [grant.outcome is RequestOutcome.GRANTED for grant in grants]

    def release(self, member: str, now: float = 0.0) -> str | None:
        """Pass the token (equal control) or close a contact pair."""
        if self.mode is FCMMode.EQUAL_CONTROL:
            try:
                return self.server.release_floor(
                    self.server.session_group, member
                )
            except FloorControlError:
                return None
        if self.mode is FCMMode.DIRECT_CONTACT:
            self._contact_pairs = [
                pair for pair in self._contact_pairs if member not in pair
            ]
        return None

    def speakers(self) -> set[str]:
        """Members the mode currently allows to deliver."""
        if self.mode is FCMMode.GROUP_DISCUSSION:
            if self._discussion is None:
                return set()
            return self.server.current_speakers(self._discussion)
        if self.mode is FCMMode.DIRECT_CONTACT:
            return {member for pair in self._contact_pairs for member in pair}
        return self.server.current_speakers(self.server.session_group)

    def waiting(self) -> list[str]:
        """The equal-control token queue (empty for the other modes)."""
        if self.mode is not FCMMode.EQUAL_CONTROL:
            return []
        return self.server.arbitrator.token(self.server.session_group).waiting()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_member(self, member: str) -> None:
        if member == self.server.chair:
            return
        try:
            self.server.registry.member(member)
        except FloorControlError:
            self.server.join(member)

    def _shared_discussion(self, member: str) -> str:
        chair = self.server.chair
        if self._discussion is None:
            self._discussion = self.server.open_discussion(chair)
        group = self.server.registry.group(self._discussion)
        if member not in group:
            invitation = self.server.invite(self._discussion, chair, member)
            self.server.respond(invitation.invitation_id, accept=True)
        return self._discussion


class FIFOPolicy:
    """The A4 baseline (:class:`FIFOFloorControl`) behind the protocol.

    The wrapper also records a replayable transcript (:attr:`log`) in
    the server's event vocabulary, so baseline runs are comparable —
    and byte-identity-checkable against the compiled engine — with the
    mode policies: ``JOIN`` on a member's first request, ``REQUEST``
    plus ``GRANT``/``QUEUE`` per ask (queue events carry the holder
    reason and the 1-based position), ``TOKEN_PASS`` on a successful
    release.  Baselines have no virtual clock, so events carry the
    workload timestamps the caller passes as ``now``.
    """

    name = "fifo"

    def __init__(self, log_capacity: int | None = None) -> None:
        self.impl = FIFOFloorControl()
        self.log = EventLog(capacity=log_capacity)
        self._seen: set[str] = set()

    def request(self, member: str, now: float = 0.0) -> bool:
        """Single global queue: first asker speaks, the rest wait."""
        if member not in self._seen:
            self._seen.add(member)
            self.log.append(now, EventKind.JOIN, member, "session")
        self.log.append(now, EventKind.REQUEST, member, "session", self.name,
                        data={"mode": self.name})
        granted = self.impl.request(member, now)
        if granted:
            self.log.append(now, EventKind.GRANT, member, "session", self.name,
                            data={"reason": None, "mode": self.name})
        else:
            reason = f"floor held by {self.impl.holder!r}"
            self.log.append(
                now, EventKind.QUEUE, member, "session", reason,
                data={"reason": reason, "mode": self.name,
                      "position": self.impl.queue.index(member) + 1},
            )
        return granted

    def release(self, member: str, now: float = 0.0) -> str | None:
        """Head of the queue takes over; stale releases are ignored."""
        try:
            successor = self.impl.release(member, now)
        except FloorControlError:
            return None
        self.log.append(now, EventKind.TOKEN_PASS, member, "session",
                        successor or "", data={"to": successor})
        return successor

    def speakers(self) -> set[str]:
        """The single current holder (or nobody)."""
        return self.impl.speakers()

    def waiting(self) -> list[str]:
        """The FIFO wait queue."""
        return list(self.impl.queue)


class FreeForAllPolicy:
    """The no-floor-control baseline behind the protocol.

    Every request is granted and counts as an uncontrolled post, so the
    wrapped :class:`FreeForAll` keeps scoring collisions; ``impl``
    exposes the collision/overload counters.  Like :class:`FIFOPolicy`
    the wrapper records a replayable transcript (:attr:`log`): ``JOIN``
    on first request, then ``REQUEST`` + ``GRANT`` per post, at the
    caller's workload timestamps.
    """

    name = "free_for_all"

    def __init__(
        self, collision_window: float = 0.25, log_capacity: int | None = None
    ) -> None:
        self.impl = FreeForAll(collision_window=collision_window)
        self.log = EventLog(capacity=log_capacity)
        self._seen: set[str] = set()

    def request(self, member: str, now: float = 0.0) -> bool:
        """Always granted — that is the point of this baseline."""
        if member not in self._seen:
            self._seen.add(member)
            self.log.append(now, EventKind.JOIN, member, "session")
        self.log.append(now, EventKind.REQUEST, member, "session", self.name,
                        data={"mode": self.name})
        self.impl.post(member, now)
        self.log.append(now, EventKind.GRANT, member, "session", self.name,
                        data={"reason": None, "mode": self.name})
        return True

    def release(self, member: str, now: float = 0.0) -> str | None:
        """No floor to release."""
        return None

    def speakers(self) -> set[str]:
        """Everyone who ever spoke."""
        return self.impl.speakers()

    def waiting(self) -> list[str]:
        """Nobody ever waits."""
        return []


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, Callable[..., FloorPolicy]] = {}


def register_policy(name: str, factory: Callable[..., FloorPolicy]) -> None:
    """Register a policy factory under a unique name.

    Re-registering the *same* factory under the same name is a no-op,
    so the module-level registration below stays safe when worker
    processes (spawn start method) re-import this module; only a
    *conflicting* registration is an error.

    Raises
    ------
    ReproError
        If the name is already taken by a different factory.
    """
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not factory:
        raise ReproError(f"policy {name!r} is already registered")
    _REGISTRY[name] = factory


def unregister_policy(name: str) -> None:
    """Remove a registered policy (no-op when unknown); for plugins
    and tests that register throwaway policies."""
    _REGISTRY.pop(name, None)


def make_policy(name: str, **kwargs) -> FloorPolicy:
    """Instantiate a registered policy by name.

    Raises
    ------
    ReproError
        On an unknown policy name (the message lists what exists).
    """
    if name not in _REGISTRY:
        raise ReproError(
            f"unknown floor policy {name!r}; registered: {policy_names()}"
        )
    return _REGISTRY[name](**kwargs)


def policy_names() -> list[str]:
    """All registered policy names, sorted."""
    return sorted(_REGISTRY)


def resolve_mode(policy: FCMMode | str) -> FCMMode:
    """Map a mode-backed policy name (or an :class:`FCMMode`) to its
    mode; baseline policies have no FCM mode and raise.

    Raises
    ------
    ReproError
        If the name is not one of the four FCM mode policies.
    """
    if isinstance(policy, FCMMode):
        return policy
    try:
        return FCMMode(policy)
    except ValueError:
        raise ReproError(
            f"{policy!r} is not a session floor mode; expected one of "
            f"{[mode.value for mode in FCMMode]}"
        ) from None


for _mode in FCMMode:
    register_policy(
        _mode.value,
        lambda mode=_mode, **kwargs: ArbitratedPolicy(mode, **kwargs),
    )
register_policy("fifo", FIFOPolicy)
register_policy("free_for_all", FreeForAllPolicy)
