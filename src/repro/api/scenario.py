"""Scripted scenarios: timed action lists a session executes.

Every example and benchmark used to hand-roll its own event loop of
``clock.call_at(...)`` calls.  A :class:`Scenario` is that script as a
value: an ordered list of :class:`ScenarioStep` items built with the
:func:`at` helper, runnable against any
:class:`~repro.api.session.Session`::

    scenario = Scenario().add(
        at(1.5, "request_floor", "alice"),
        at(2.5, "post", "alice", content="my point"),
        at(3.5, "release_floor", "alice"),
    )
    scenario.run(session)

Steps name a verb on the session facade (``"post"``,
``"request_floor"``, ``"release_floor"``, ``"set_mode"``,
``"disconnect"``, ...) or carry an arbitrary callable taking the
session.  :meth:`Scenario.from_workload` converts the seeded event
lists of :mod:`repro.workload.generator`, which is how the CLI and the
benchmarks feed generated workloads through the facade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

from ..errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .session import Session

__all__ = ["Scenario", "ScenarioStep", "at"]

#: Workload generator action -> session verb.
_WORKLOAD_VERBS = {
    "request": "request_floor",
    "release": "release_floor",
    "post": "post",
}


@dataclass(frozen=True)
class ScenarioStep:
    """One scripted action at an absolute virtual time.

    ``action`` is either the name of a :class:`Session` verb (invoked
    as ``verb(member, **kwargs)`` — ``member`` omitted when ``None``)
    or a callable invoked as ``action(session)``.
    """

    time: float
    action: str | Callable[["Session"], Any]
    member: str | None = None
    kwargs: Mapping[str, Any] = field(default_factory=dict)

    def apply(self, session: "Session") -> None:
        """Execute this step against a session facade."""
        if callable(self.action):
            self.action(session)
            return
        verb = getattr(session, self.action, None)
        if verb is None:
            raise ReproError(f"session has no verb {self.action!r}")
        args = (self.member,) if self.member is not None else ()
        verb(*args, **dict(self.kwargs))


def at(
    time: float,
    action: str | Callable[["Session"], Any],
    member: str | None = None,
    **kwargs: Any,
) -> ScenarioStep:
    """Build one :class:`ScenarioStep`: ``at(2.0, "post", "alice",
    content="hi")`` runs ``session.post("alice", content="hi")`` at
    virtual time 2.0."""
    return ScenarioStep(time=time, action=action, member=member, kwargs=kwargs)


class Scenario:
    """An ordered, replayable script of session actions.

    Steps sort by time (stable, so same-instant steps keep insertion
    order — matching the FIFO guarantee of the virtual clock).
    """

    def __init__(self, steps: Iterable[ScenarioStep] = (), name: str = "") -> None:
        self._steps: list[ScenarioStep] = list(steps)
        self.name = name

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, *steps: ScenarioStep) -> "Scenario":
        """Append steps; returns ``self`` for chaining."""
        self._steps.extend(steps)
        return self

    @classmethod
    def from_workload(cls, events: Iterable[Any], name: str = "") -> "Scenario":
        """Convert :class:`~repro.workload.generator.RequestEvent` items
        (or anything with ``time``/``member``/``action``/``mode``/
        ``content`` attributes) into a scenario.

        Raises
        ------
        ReproError
            On an event action the session facade cannot express.
        """
        steps = []
        for event in events:
            verb = _WORKLOAD_VERBS.get(event.action)
            if verb is None:
                raise ReproError(f"unknown workload action {event.action!r}")
            kwargs: dict[str, Any] = {}
            if event.action == "request":
                kwargs["mode"] = event.mode
            elif event.action == "post":
                kwargs["content"] = event.content or "(empty)"
            steps.append(
                ScenarioStep(
                    time=event.time, action=verb, member=event.member, kwargs=kwargs
                )
            )
        return cls(steps, name=name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def steps(self) -> list[ScenarioStep]:
        """The steps in execution order (a copy)."""
        return sorted(self._steps, key=lambda step: step.time)

    @property
    def duration(self) -> float:
        """Time of the last step (0.0 when empty)."""
        if not self._steps:
            return 0.0
        return max(step.time for step in self._steps)

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[ScenarioStep]:
        return iter(self.steps)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def schedule(self, session: "Session") -> None:
        """Queue every step on the session's clock without running it.

        Steps whose time already passed (e.g. generated workload events
        that fall inside the session's join warmup) run at the current
        instant instead, preserving their relative order."""
        now = session.clock.now()
        for step in self.steps:
            session.clock.call_at(max(step.time, now), step.apply, session)

    def run(self, session: "Session", until: float | None = None) -> "Session":
        """Schedule all steps and run virtual time to ``until``
        (default: one second past the last step, so trailing network
        messages settle).  Returns the session for chaining."""
        self.schedule(session)
        deadline = until if until is not None else self.duration + 1.0
        session.run_until(deadline)
        return session
