"""High-level facade over the whole DMPS stack.

This package is the canonical way to stand up and drive a session::

    from repro.api import Scenario, Session, at

    with Session.build("alice", "bob", chair="teacher") as s:
        Scenario().add(
            at(1.5, "set_mode", mode="equal_control"),
            at(2.0, "request_floor", "alice"),
            at(2.5, "post", "alice", content="my point"),
            at(3.0, "release_floor", "alice"),
        ).run(s)
        print(s.report().render())

Three layers:

* :mod:`repro.api.config` — declarative topology
  (:class:`SessionConfig`, :class:`SessionBuilder`) including
  time-varying network dynamics (:class:`DynamicsSpec`,
  :class:`PartitionSpec`, backed by :mod:`repro.net.dynamics`);
* :mod:`repro.api.session` — the :class:`Session` facade owning clock,
  network, dynamics, server, and clients;
* :mod:`repro.api.policies` — the :class:`FloorPolicy` protocol and the
  name registry unifying the four FCM modes with the baselines;
* :mod:`repro.api.scenario` — scripted scenarios (:class:`Scenario`,
  :func:`at`) that the workload generators and the CLI emit; the
  dynamics verbs (``degrade_link`` / ``partition`` / ``heal`` /
  ``churn``) script the same way as floor-control actions.

The facade composes the lower layers; every pre-existing import path
(``from repro.session import DMPSServer``, ...) keeps working.
"""

from .config import (
    DynamicsSpec,
    LinkSpec,
    ParticipantSpec,
    PartitionSpec,
    ResourceSpec,
    SessionBuilder,
    SessionConfig,
)
from .policies import (
    ArbitratedPolicy,
    FIFOPolicy,
    FloorPolicy,
    FreeForAllPolicy,
    make_policy,
    policy_names,
    register_policy,
    resolve_mode,
    unregister_policy,
)
from .scenario import Scenario, ScenarioStep, at
from .session import Session

__all__ = [
    "ArbitratedPolicy",
    "DynamicsSpec",
    "FIFOPolicy",
    "FloorPolicy",
    "FreeForAllPolicy",
    "LinkSpec",
    "ParticipantSpec",
    "PartitionSpec",
    "ResourceSpec",
    "Scenario",
    "ScenarioStep",
    "Session",
    "SessionBuilder",
    "SessionConfig",
    "at",
    "make_policy",
    "policy_names",
    "register_policy",
    "resolve_mode",
    "unregister_policy",
]
