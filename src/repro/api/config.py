"""Declarative configuration for the :mod:`repro.api` session facade.

A DMPS session is a *star*: one server owning the global clock, floor
control, and the authoritative whiteboards, plus one client per
participant.  Before this module existed every entry point re-wired
that star by hand (clock, network, links, server, clients, joins,
heartbeats — ~15 lines of boilerplate each).  Here the same topology is
described once, declaratively:

* :class:`LinkSpec` — latency/jitter/loss/bandwidth of one star link;
* :class:`ParticipantSpec` — one member and their station parameters;
* :class:`ResourceSpec` — server capacity and the paper's ``a``/``b``
  thresholds;
* :class:`DynamicsSpec` / :class:`PartitionSpec` — time-varying network
  behaviour (link profiles from :mod:`repro.net.dynamics`, partition
  windows) applied to the star when the session is built;
* :class:`SessionConfig` — the full frozen description of a session,
  including the named runtime invariants (``checks``) a
  :class:`~repro.check.monitor.SessionMonitor` watches while it runs;
* :class:`SessionBuilder` — a fluent builder producing a config or a
  live :class:`~repro.api.session.Session`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from ..core.modes import FCMMode
from ..core.resources import ResourceModel, ResourceVector
from ..errors import SessionError
from ..net.dynamics import GilbertElliott, LinkProfile, RampProfile
from ..net.simnet import Link
from .policies import resolve_mode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .session import Session

__all__ = [
    "DynamicsSpec",
    "LinkSpec",
    "ParticipantSpec",
    "PartitionSpec",
    "ResourceSpec",
    "SessionConfig",
    "SessionBuilder",
]


@dataclass(frozen=True)
class LinkSpec:
    """Parameters of one (symmetric) client<->server star link."""

    latency: float = 0.02
    jitter: float = 0.0
    loss: float = 0.0
    bandwidth_kbps: float | None = None

    def to_link(self) -> Link:
        """Materialize as a :class:`~repro.net.simnet.Link`."""
        return Link(
            base_latency=self.latency,
            jitter=self.jitter,
            loss_probability=self.loss,
            bandwidth_kbps=self.bandwidth_kbps,
        )


@dataclass(frozen=True)
class ParticipantSpec:
    """One session participant and their station imperfections.

    ``link=None`` means the participant uses the session-wide default
    :class:`LinkSpec`; ``clock_offset``/``drift_rate`` configure the
    client's :class:`~repro.clock.drift.DriftingClock`.
    """

    name: str
    chair: bool = False
    host: str = ""
    link: LinkSpec | None = None
    clock_offset: float = 0.0
    drift_rate: float = 0.0

    @property
    def host_name(self) -> str:
        """The network host this participant's client runs on."""
        return self.host or f"host-{self.name}"


@dataclass(frozen=True)
class ResourceSpec:
    """Server station capacity plus the Z spec's ``a``/``b`` fractions."""

    network_kbps: float = 100_000.0
    cpu_share: float = 16.0
    memory_mb: float = 8192.0
    basic_fraction: float = 0.3
    minimal_fraction: float = 0.1

    def to_model(self) -> ResourceModel:
        """Materialize as a :class:`~repro.core.resources.ResourceModel`."""
        return ResourceModel(
            ResourceVector(
                network_kbps=self.network_kbps,
                cpu_share=self.cpu_share,
                memory_mb=self.memory_mb,
            ),
            basic_fraction=self.basic_fraction,
            minimal_fraction=self.minimal_fraction,
        )


@dataclass(frozen=True)
class DynamicsSpec:
    """One time-varying link profile applied to star links at build.

    ``members`` names whose client<->server link pair the profile
    drives; empty means every participant's.  Profiles are scheduled on
    the session clock *before* the join warmup runs, so a profile
    written against t=0 covers the whole session.
    """

    profile: LinkProfile
    members: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.profile, LinkProfile):
            raise SessionError(
                f"dynamics need a LinkProfile, got {self.profile!r}"
            )


@dataclass(frozen=True)
class PartitionSpec:
    """A scheduled partition-and-heal window.

    At virtual time ``start`` the named ``members`` (empty: every
    participant except the chair) are cut off from the server; after
    ``duration`` seconds the links heal.  Messages crossing the cut
    count as ``blocked`` in the network stats.
    """

    start: float
    duration: float
    members: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.start < 0:
            raise SessionError(f"negative partition start: {self.start!r}")
        if self.duration <= 0:
            raise SessionError(
                f"partition duration must be positive, got {self.duration!r}"
            )

    @property
    def heal_at(self) -> float:
        """The virtual time the partition heals."""
        return self.start + self.duration


@dataclass(frozen=True)
class SessionConfig:
    """The full, frozen description of one DMPS session.

    ``heartbeat_interval`` / ``clock_sync_interval`` of ``None`` disable
    the respective client-side loop; ``presence_sweep`` of ``None``
    keeps the presence monitor's default sweep.  ``join_warmup`` is how
    far virtual time runs after the join handshakes are sent, so a
    freshly built session already has all members joined.

    ``checks`` names runtime invariants from
    :mod:`repro.check.monitor` (e.g. ``"single_speaker"``); a non-empty
    tuple makes the session own a
    :class:`~repro.check.monitor.SessionMonitor` that re-checks them on
    every floor event and every ``check_sweep`` virtual seconds, with
    violations folded into the session report.
    """

    participants: tuple[ParticipantSpec, ...] = ()
    chair: str = "teacher"
    link: LinkSpec = field(default_factory=LinkSpec)
    resources: ResourceSpec = field(default_factory=ResourceSpec)
    dynamics: tuple[DynamicsSpec | PartitionSpec, ...] = ()
    mode: FCMMode = FCMMode.FREE_ACCESS
    seed: int = 0
    presence_timeout: float = 1.0
    presence_sweep: float | None = None
    heartbeat_interval: float | None = 0.25
    clock_sync_interval: float | None = None
    join_warmup: float = 1.0
    server_host: str = "server"
    checks: tuple[str, ...] = ()
    check_sweep: float = 0.5
    #: Ring-buffer capacity of the server transcript; ``None`` keeps
    #: every event.  Fleet runs set a finite capacity so per-session
    #: memory stays bounded however long the simulation runs.
    transcript_capacity: int | None = None
    #: Arbitration engine: ``"reference"`` runs the paper-shaped object
    #: graph; ``"compiled"`` swaps in the array-compiled batch
    #: arbitration of :mod:`repro.engine` (identical decisions, stats
    #: and transcripts — an execution knob, never part of the seed).
    engine: str = "reference"
    #: Mode of the session's live metrics fold
    #: (:class:`~repro.metrics.fold.MetricsFold`): ``"exact"`` retains
    #: latency samples for nearest-rank percentiles; ``"fold"`` bins
    #: them into the mergeable histogram so long-lived (ring-bounded)
    #: sessions keep O(members) metric state.
    metrics_mode: str = "exact"

    def validate(self) -> None:
        """Reject inconsistent topologies before any wiring happens."""
        if not self.participants:
            raise SessionError("a session needs at least one participant")
        names = [spec.name for spec in self.participants]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SessionError(f"duplicate participants: {sorted(duplicates)!r}")
        if self.join_warmup < 0:
            raise SessionError(f"negative join warmup: {self.join_warmup!r}")
        for spec in self.participants:
            if spec.chair and spec.name != self.chair:
                raise SessionError(
                    f"participant {spec.name!r} marked chair but the session "
                    f"chair is {self.chair!r}"
                )
        for dynamic in self.dynamics:
            if not isinstance(dynamic, (DynamicsSpec, PartitionSpec)):
                raise SessionError(
                    f"dynamics entries must be DynamicsSpec or PartitionSpec, "
                    f"got {dynamic!r}"
                )
            unknown = sorted(set(dynamic.members) - set(names))
            if unknown:
                raise SessionError(
                    f"dynamics target unknown participants: {unknown!r}"
                )
        if self.checks:
            from ..check.monitor import invariant_names

            unknown_checks = sorted(set(self.checks) - set(invariant_names()))
            if unknown_checks:
                raise SessionError(
                    f"unknown check invariants {unknown_checks!r}; "
                    f"registered: {invariant_names()}"
                )
        if self.check_sweep <= 0:
            raise SessionError(
                f"check_sweep must be positive, got {self.check_sweep!r}"
            )
        if self.transcript_capacity is not None and self.transcript_capacity < 1:
            raise SessionError(
                f"transcript_capacity must be positive or None, "
                f"got {self.transcript_capacity!r}"
            )
        from ..engine import ENGINES

        if self.engine not in ENGINES:
            raise SessionError(
                f"unknown session engine {self.engine!r}; one of {list(ENGINES)}"
            )
        if self.metrics_mode not in ("exact", "fold"):
            raise SessionError(
                f"unknown metrics mode {self.metrics_mode!r}; "
                f"one of ['exact', 'fold']"
            )


class SessionBuilder:
    """Fluent builder for :class:`SessionConfig` / live sessions.

    Example::

        session = (SessionBuilder(chair="teacher")
                   .participants("alice", "bob")
                   .link(latency=0.02, jitter=0.005)
                   .policy("equal_control")
                   .seed(7)
                   .build())

    The chair is added as a participant automatically unless the
    builder was created with ``chair_joins=False`` (a server-side-only
    chair, useful for pure monitoring workloads).
    """

    def __init__(self, chair: str = "teacher", chair_joins: bool = True) -> None:
        self._chair = chair
        self._chair_joins = chair_joins
        self._specs: dict[str, ParticipantSpec] = {}
        self._link = LinkSpec()
        self._resources = ResourceSpec()
        self._dynamics: list[DynamicsSpec | PartitionSpec] = []
        self._mode = FCMMode.FREE_ACCESS
        self._seed = 0
        self._presence_timeout = 1.0
        self._presence_sweep: float | None = None
        self._heartbeat_interval: float | None = 0.25
        self._clock_sync_interval: float | None = None
        self._join_warmup = 1.0
        self._server_host = "server"
        self._checks: tuple[str, ...] = ()
        self._check_sweep = 0.5
        self._transcript_capacity: int | None = None
        self._engine = "reference"
        self._metrics_mode = "exact"

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def participant(
        self,
        name: str,
        *,
        latency: float | None = None,
        jitter: float | None = None,
        loss: float | None = None,
        bandwidth_kbps: float | None = None,
        clock_offset: float = 0.0,
        drift_rate: float = 0.0,
        host: str = "",
    ) -> "SessionBuilder":
        """Add (or re-declare) one participant; link parameters given
        here override the session-wide defaults for this member only."""
        link = None
        if any(v is not None for v in (latency, jitter, loss, bandwidth_kbps)):
            link = LinkSpec(
                latency=latency if latency is not None else self._link.latency,
                jitter=jitter if jitter is not None else self._link.jitter,
                loss=loss if loss is not None else self._link.loss,
                bandwidth_kbps=(
                    bandwidth_kbps
                    if bandwidth_kbps is not None
                    else self._link.bandwidth_kbps
                ),
            )
        self._specs[name] = ParticipantSpec(
            name=name,
            chair=(name == self._chair),
            host=host,
            link=link,
            clock_offset=clock_offset,
            drift_rate=drift_rate,
        )
        return self

    def participants(self, *names: str) -> "SessionBuilder":
        """Add several participants with default station parameters."""
        for name in names:
            self.participant(name)
        return self

    def link(
        self,
        latency: float | None = None,
        jitter: float | None = None,
        loss: float | None = None,
        bandwidth_kbps: float | None = None,
    ) -> "SessionBuilder":
        """Set the session-wide default link parameters."""
        updates = {
            key: value
            for key, value in (
                ("latency", latency),
                ("jitter", jitter),
                ("loss", loss),
                ("bandwidth_kbps", bandwidth_kbps),
            )
            if value is not None
        }
        self._link = replace(self._link, **updates)
        return self

    def resources(self, **kwargs: float) -> "SessionBuilder":
        """Override server capacity / threshold fields of
        :class:`ResourceSpec` (keyword arguments match its fields)."""
        self._resources = replace(self._resources, **kwargs)
        return self

    # ------------------------------------------------------------------
    # Network dynamics
    # ------------------------------------------------------------------
    def dynamics(
        self, *specs: DynamicsSpec | PartitionSpec
    ) -> "SessionBuilder":
        """Attach time-varying network behaviour (profiles from
        :mod:`repro.net.dynamics` wrapped in :class:`DynamicsSpec`,
        or :class:`PartitionSpec` windows)."""
        self._dynamics.extend(specs)
        return self

    def loss_burst(
        self,
        loss: float = 0.9,
        *,
        loss_good: float | None = None,
        mean_good: float = 5.0,
        mean_bad: float = 1.0,
        start: float = 0.0,
        members: tuple[str, ...] = (),
    ) -> "SessionBuilder":
        """Bursty loss: a seeded Gilbert–Elliott model alternating the
        star links between ``loss_good`` and ``loss`` (the bad-state
        probability), with mean sojourns ``mean_good``/``mean_bad``.
        ``loss_good=None`` keeps each link's configured static loss in
        the good state — bursts only ever add loss."""
        return self.dynamics(
            DynamicsSpec(
                GilbertElliott(
                    loss_good=loss_good,
                    loss_bad=loss,
                    mean_good=mean_good,
                    mean_bad=mean_bad,
                    start=start,
                ),
                members=members,
            )
        )

    def delay_ramp(
        self,
        to_latency: float,
        *,
        start: float,
        end: float,
        from_latency: float | None = None,
        steps: int = 20,
        members: tuple[str, ...] = (),
    ) -> "SessionBuilder":
        """Sweep star-link latency linearly to ``to_latency`` between
        virtual times ``start`` and ``end`` — the canonical "delay
        creeps past the paper's bound" workload."""
        return self.dynamics(
            DynamicsSpec(
                RampProfile(
                    "base_latency",
                    start=start,
                    end=end,
                    to_value=to_latency,
                    from_value=from_latency,
                    steps=steps,
                ),
                members=members,
            )
        )

    def partition_window(
        self,
        start: float,
        duration: float,
        *,
        members: tuple[str, ...] = (),
    ) -> "SessionBuilder":
        """Cut ``members`` (default: everyone but the chair) off from
        the server at ``start``; heal after ``duration`` seconds."""
        return self.dynamics(
            PartitionSpec(start=start, duration=duration, members=members)
        )

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def policy(self, policy: "FCMMode | str") -> "SessionBuilder":
        """Set the initial floor policy by mode or registry name
        (``"free_access"``, ``"equal_control"``, ...)."""
        self._mode = resolve_mode(policy)
        return self

    def seed(self, value: int) -> "SessionBuilder":
        """Seed for network jitter/loss randomness (reproducible runs)."""
        self._seed = value
        return self

    def checks(self, *names: str, sweep: float | None = None) -> "SessionBuilder":
        """Attach runtime invariants (:mod:`repro.check.monitor`) the
        session monitors on every floor event — e.g.
        ``.checks("single_speaker", "queue_consistent")``.  Repeated
        names (across calls too) are kept once.  ``sweep`` overrides
        the periodic re-check interval (virtual seconds)."""
        self._checks = tuple(dict.fromkeys(self._checks + names))
        if sweep is not None:
            self._check_sweep = sweep
        return self

    def presence(
        self, timeout: float | None = None, sweep: float | None = None
    ) -> "SessionBuilder":
        """Configure the presence monitor (heartbeat timeout / sweep)."""
        if timeout is not None:
            self._presence_timeout = timeout
        if sweep is not None:
            self._presence_sweep = sweep
        return self

    def heartbeats(self, interval: float | None) -> "SessionBuilder":
        """Client heartbeat period; ``None`` disables heartbeats."""
        self._heartbeat_interval = interval
        return self

    def clock_sync(self, interval: float | None) -> "SessionBuilder":
        """Cristian clock-sync period; ``None`` disables syncing."""
        self._clock_sync_interval = interval
        return self

    def warmup(self, seconds: float) -> "SessionBuilder":
        """Virtual time to run right after joins (handshake settling)."""
        self._join_warmup = seconds
        return self

    def server_host(self, name: str) -> "SessionBuilder":
        """Rename the server's network host (default ``"server"``)."""
        self._server_host = name
        return self

    def transcript_capacity(self, capacity: int | None) -> "SessionBuilder":
        """Bound the server transcript to the newest ``capacity``
        events (ring mode); ``None`` keeps the full history."""
        self._transcript_capacity = capacity
        return self

    def metrics_mode(self, mode: str) -> "SessionBuilder":
        """Live metrics fold mode: ``"exact"`` (default) or ``"fold"``
        for O(members) binned state on long-lived sessions."""
        self._metrics_mode = mode
        return self

    def engine(self, name: str) -> "SessionBuilder":
        """Arbitration engine: ``"reference"`` (default) or
        ``"compiled"`` (:mod:`repro.engine`).  An execution knob —
        transcripts, reports and seeds are identical either way."""
        self._engine = name
        return self

    # ------------------------------------------------------------------
    # Products
    # ------------------------------------------------------------------
    def config(self) -> SessionConfig:
        """Freeze the current state into a :class:`SessionConfig`."""
        specs = list(self._specs.values())
        if self._chair_joins and self._chair not in self._specs:
            specs.insert(0, ParticipantSpec(name=self._chair, chair=True))
        config = SessionConfig(
            participants=tuple(specs),
            chair=self._chair,
            link=self._link,
            resources=self._resources,
            dynamics=tuple(self._dynamics),
            mode=self._mode,
            seed=self._seed,
            presence_timeout=self._presence_timeout,
            presence_sweep=self._presence_sweep,
            heartbeat_interval=self._heartbeat_interval,
            clock_sync_interval=self._clock_sync_interval,
            join_warmup=self._join_warmup,
            server_host=self._server_host,
            checks=self._checks,
            check_sweep=self._check_sweep,
            transcript_capacity=self._transcript_capacity,
            engine=self._engine,
            metrics_mode=self._metrics_mode,
        )
        config.validate()
        return config

    def build(self) -> "Session":
        """Stand the session up: wire, join everyone, settle the clock."""
        from .session import Session

        return Session(self.config())
