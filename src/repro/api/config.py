"""Declarative configuration for the :mod:`repro.api` session facade.

A DMPS session is a *star*: one server owning the global clock, floor
control, and the authoritative whiteboards, plus one client per
participant.  Before this module existed every entry point re-wired
that star by hand (clock, network, links, server, clients, joins,
heartbeats — ~15 lines of boilerplate each).  Here the same topology is
described once, declaratively:

* :class:`LinkSpec` — latency/jitter/loss/bandwidth of one star link;
* :class:`ParticipantSpec` — one member and their station parameters;
* :class:`ResourceSpec` — server capacity and the paper's ``a``/``b``
  thresholds;
* :class:`SessionConfig` — the full frozen description of a session;
* :class:`SessionBuilder` — a fluent builder producing a config or a
  live :class:`~repro.api.session.Session`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from ..core.modes import FCMMode
from ..core.resources import ResourceModel, ResourceVector
from ..errors import SessionError
from ..net.simnet import Link
from .policies import resolve_mode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .session import Session

__all__ = [
    "LinkSpec",
    "ParticipantSpec",
    "ResourceSpec",
    "SessionConfig",
    "SessionBuilder",
]


@dataclass(frozen=True)
class LinkSpec:
    """Parameters of one (symmetric) client<->server star link."""

    latency: float = 0.02
    jitter: float = 0.0
    loss: float = 0.0
    bandwidth_kbps: float | None = None

    def to_link(self) -> Link:
        """Materialize as a :class:`~repro.net.simnet.Link`."""
        return Link(
            base_latency=self.latency,
            jitter=self.jitter,
            loss_probability=self.loss,
            bandwidth_kbps=self.bandwidth_kbps,
        )


@dataclass(frozen=True)
class ParticipantSpec:
    """One session participant and their station imperfections.

    ``link=None`` means the participant uses the session-wide default
    :class:`LinkSpec`; ``clock_offset``/``drift_rate`` configure the
    client's :class:`~repro.clock.drift.DriftingClock`.
    """

    name: str
    chair: bool = False
    host: str = ""
    link: LinkSpec | None = None
    clock_offset: float = 0.0
    drift_rate: float = 0.0

    @property
    def host_name(self) -> str:
        """The network host this participant's client runs on."""
        return self.host or f"host-{self.name}"


@dataclass(frozen=True)
class ResourceSpec:
    """Server station capacity plus the Z spec's ``a``/``b`` fractions."""

    network_kbps: float = 100_000.0
    cpu_share: float = 16.0
    memory_mb: float = 8192.0
    basic_fraction: float = 0.3
    minimal_fraction: float = 0.1

    def to_model(self) -> ResourceModel:
        """Materialize as a :class:`~repro.core.resources.ResourceModel`."""
        return ResourceModel(
            ResourceVector(
                network_kbps=self.network_kbps,
                cpu_share=self.cpu_share,
                memory_mb=self.memory_mb,
            ),
            basic_fraction=self.basic_fraction,
            minimal_fraction=self.minimal_fraction,
        )


@dataclass(frozen=True)
class SessionConfig:
    """The full, frozen description of one DMPS session.

    ``heartbeat_interval`` / ``clock_sync_interval`` of ``None`` disable
    the respective client-side loop; ``presence_sweep`` of ``None``
    keeps the presence monitor's default sweep.  ``join_warmup`` is how
    far virtual time runs after the join handshakes are sent, so a
    freshly built session already has all members joined.
    """

    participants: tuple[ParticipantSpec, ...] = ()
    chair: str = "teacher"
    link: LinkSpec = field(default_factory=LinkSpec)
    resources: ResourceSpec = field(default_factory=ResourceSpec)
    mode: FCMMode = FCMMode.FREE_ACCESS
    seed: int = 0
    presence_timeout: float = 1.0
    presence_sweep: float | None = None
    heartbeat_interval: float | None = 0.25
    clock_sync_interval: float | None = None
    join_warmup: float = 1.0
    server_host: str = "server"

    def validate(self) -> None:
        """Reject inconsistent topologies before any wiring happens."""
        if not self.participants:
            raise SessionError("a session needs at least one participant")
        names = [spec.name for spec in self.participants]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise SessionError(f"duplicate participants: {sorted(duplicates)!r}")
        if self.join_warmup < 0:
            raise SessionError(f"negative join warmup: {self.join_warmup!r}")
        for spec in self.participants:
            if spec.chair and spec.name != self.chair:
                raise SessionError(
                    f"participant {spec.name!r} marked chair but the session "
                    f"chair is {self.chair!r}"
                )


class SessionBuilder:
    """Fluent builder for :class:`SessionConfig` / live sessions.

    Example::

        session = (SessionBuilder(chair="teacher")
                   .participants("alice", "bob")
                   .link(latency=0.02, jitter=0.005)
                   .policy("equal_control")
                   .seed(7)
                   .build())

    The chair is added as a participant automatically unless the
    builder was created with ``chair_joins=False`` (a server-side-only
    chair, useful for pure monitoring workloads).
    """

    def __init__(self, chair: str = "teacher", chair_joins: bool = True) -> None:
        self._chair = chair
        self._chair_joins = chair_joins
        self._specs: dict[str, ParticipantSpec] = {}
        self._link = LinkSpec()
        self._resources = ResourceSpec()
        self._mode = FCMMode.FREE_ACCESS
        self._seed = 0
        self._presence_timeout = 1.0
        self._presence_sweep: float | None = None
        self._heartbeat_interval: float | None = 0.25
        self._clock_sync_interval: float | None = None
        self._join_warmup = 1.0
        self._server_host = "server"

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def participant(
        self,
        name: str,
        *,
        latency: float | None = None,
        jitter: float | None = None,
        loss: float | None = None,
        bandwidth_kbps: float | None = None,
        clock_offset: float = 0.0,
        drift_rate: float = 0.0,
        host: str = "",
    ) -> "SessionBuilder":
        """Add (or re-declare) one participant; link parameters given
        here override the session-wide defaults for this member only."""
        link = None
        if any(v is not None for v in (latency, jitter, loss, bandwidth_kbps)):
            link = LinkSpec(
                latency=latency if latency is not None else self._link.latency,
                jitter=jitter if jitter is not None else self._link.jitter,
                loss=loss if loss is not None else self._link.loss,
                bandwidth_kbps=(
                    bandwidth_kbps
                    if bandwidth_kbps is not None
                    else self._link.bandwidth_kbps
                ),
            )
        self._specs[name] = ParticipantSpec(
            name=name,
            chair=(name == self._chair),
            host=host,
            link=link,
            clock_offset=clock_offset,
            drift_rate=drift_rate,
        )
        return self

    def participants(self, *names: str) -> "SessionBuilder":
        """Add several participants with default station parameters."""
        for name in names:
            self.participant(name)
        return self

    def link(
        self,
        latency: float | None = None,
        jitter: float | None = None,
        loss: float | None = None,
        bandwidth_kbps: float | None = None,
    ) -> "SessionBuilder":
        """Set the session-wide default link parameters."""
        updates = {
            key: value
            for key, value in (
                ("latency", latency),
                ("jitter", jitter),
                ("loss", loss),
                ("bandwidth_kbps", bandwidth_kbps),
            )
            if value is not None
        }
        self._link = replace(self._link, **updates)
        return self

    def resources(self, **kwargs: float) -> "SessionBuilder":
        """Override server capacity / threshold fields of
        :class:`ResourceSpec` (keyword arguments match its fields)."""
        self._resources = replace(self._resources, **kwargs)
        return self

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------
    def policy(self, policy: "FCMMode | str") -> "SessionBuilder":
        """Set the initial floor policy by mode or registry name
        (``"free_access"``, ``"equal_control"``, ...)."""
        self._mode = resolve_mode(policy)
        return self

    def seed(self, value: int) -> "SessionBuilder":
        """Seed for network jitter/loss randomness (reproducible runs)."""
        self._seed = value
        return self

    def presence(
        self, timeout: float | None = None, sweep: float | None = None
    ) -> "SessionBuilder":
        """Configure the presence monitor (heartbeat timeout / sweep)."""
        if timeout is not None:
            self._presence_timeout = timeout
        if sweep is not None:
            self._presence_sweep = sweep
        return self

    def heartbeats(self, interval: float | None) -> "SessionBuilder":
        """Client heartbeat period; ``None`` disables heartbeats."""
        self._heartbeat_interval = interval
        return self

    def clock_sync(self, interval: float | None) -> "SessionBuilder":
        """Cristian clock-sync period; ``None`` disables syncing."""
        self._clock_sync_interval = interval
        return self

    def warmup(self, seconds: float) -> "SessionBuilder":
        """Virtual time to run right after joins (handshake settling)."""
        self._join_warmup = seconds
        return self

    def server_host(self, name: str) -> "SessionBuilder":
        """Rename the server's network host (default ``"server"``)."""
        self._server_host = name
        return self

    # ------------------------------------------------------------------
    # Products
    # ------------------------------------------------------------------
    def config(self) -> SessionConfig:
        """Freeze the current state into a :class:`SessionConfig`."""
        specs = list(self._specs.values())
        if self._chair_joins and self._chair not in self._specs:
            specs.insert(0, ParticipantSpec(name=self._chair, chair=True))
        config = SessionConfig(
            participants=tuple(specs),
            chair=self._chair,
            link=self._link,
            resources=self._resources,
            mode=self._mode,
            seed=self._seed,
            presence_timeout=self._presence_timeout,
            presence_sweep=self._presence_sweep,
            heartbeat_interval=self._heartbeat_interval,
            clock_sync_interval=self._clock_sync_interval,
            join_warmup=self._join_warmup,
            server_host=self._server_host,
        )
        config.validate()
        return config

    def build(self) -> "Session":
        """Stand the session up: wire, join everyone, settle the clock."""
        from .session import Session

        return Session(self.config())
