"""Deterministic virtual-time event scheduler.

Every simulated subsystem in this library (network links, timed Petri
nets, playout buffers, floor arbitration) runs on a single
:class:`VirtualClock`.  Time is a ``float`` number of seconds that only
advances when the owner of the clock runs queued events, which makes
whole-system runs reproducible: the same seed and the same schedule of
events always produce the same trace.

The design deliberately mirrors a minimal ``asyncio`` loop so that the
session layer can offer the same API over real wall-clock time (see
:mod:`repro.session.runner`).

Example
-------
>>> clock = VirtualClock()
>>> fired = []
>>> handle = clock.call_at(2.5, lambda: fired.append(clock.now()))
>>> clock.run_until(10.0)
>>> fired
[2.5]
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import ClockError

__all__ = ["EventHandle", "PeriodicHandle", "VirtualClock", "periodic"]


@dataclass(order=True, slots=True)
class _ScheduledEvent:
    """Internal heap entry.

    Ordering is (time, sequence) so that events scheduled for the same
    instant run in FIFO order — a property several tests and the global
    clock admission controller rely on.  Slotted because a fleet run
    keeps one heap entry alive per scheduled event across thousands of
    concurrent sessions; the per-instance ``__dict__`` would dominate
    the scheduler's footprint.
    """

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Cancellation handle returned by :meth:`VirtualClock.call_at`."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already ran or was cancelled."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def when(self) -> float:
        """The virtual time at which the event is (was) due."""
        return self._event.time


class VirtualClock:
    """A discrete-event scheduler over virtual seconds.

    Parameters
    ----------
    start:
        Initial virtual time (seconds). Defaults to ``0.0``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: list[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._running = False

    # ------------------------------------------------------------------
    # Time observation
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for event in self._heap if not event.cancelled)

    def next_event_time(self) -> float | None:
        """Time of the earliest pending event, or ``None`` if idle."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self, when: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual time ``when``.

        Raises
        ------
        ClockError
            If ``when`` is in the virtual past, NaN, or infinite — a
            non-finite deadline compares ``False`` against everything
            and would silently corrupt the heap order.
        """
        if not math.isfinite(when):
            raise ClockError(f"event time must be finite, got {when!r}")
        if when < self._now:
            raise ClockError(
                f"cannot schedule event at t={when:.6f}; "
                f"clock is already at t={self._now:.6f}"
            )
        event = _ScheduledEvent(float(when), next(self._counter), callback, args)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def call_later(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise ClockError(f"negative delay: {delay!r}")
        return self.call_at(self._now + delay, callback, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single earliest event.

        Returns ``True`` if an event ran, ``False`` if the queue was
        empty.  Callbacks may schedule further events.
        """
        self._drop_cancelled_head()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self._now = event.time
        event.callback(*event.args)
        return True

    def run_until(self, deadline: float) -> int:
        """Run all events due at or before ``deadline``.

        The clock is left exactly at ``deadline`` (even when the last
        event fired earlier), matching the behaviour of running a real
        loop for a fixed duration.  Returns the number of events run.
        """
        if not math.isfinite(deadline):
            raise ClockError(f"deadline must be finite, got {deadline!r}")
        if deadline < self._now:
            raise ClockError(
                f"deadline t={deadline:.6f} is before now t={self._now:.6f}"
            )
        count = 0
        while True:
            self._drop_cancelled_head()
            if not self._heap or self._heap[0].time > deadline:
                break
            self.step()
            count += 1
        self._now = deadline
        return count

    def run(self, max_events: int | None = None) -> int:
        """Run until the event queue drains (or ``max_events`` ran).

        Returns the number of events run.  A ``max_events`` bound guards
        against runaway self-rescheduling loops in tests.
        """
        count = 0
        while max_events is None or count < max_events:
            if not self.step():
                break
            count += 1
        return count

    def advance(self, delta: float) -> int:
        """Convenience: ``run_until(now + delta)``."""
        return self.run_until(self._now + delta)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f}, pending={self.pending()})"


class PeriodicHandle:
    """Handle for a periodic series started by :func:`periodic`.

    Cancelling stops all future occurrences of the series.
    """

    __slots__ = ("_current", "_stopped")

    def __init__(self) -> None:
        self._current: EventHandle | None = None
        self._stopped = False

    def cancel(self) -> None:
        """Stop all future occurrences of the series."""
        self._stopped = True
        if self._current is not None:
            self._current.cancel()

    @property
    def cancelled(self) -> bool:
        return self._stopped


def periodic(
    clock: VirtualClock,
    interval: float,
    callback: Callable[[], Any],
    *,
    start_at: float | None = None,
    count: int | None = None,
) -> PeriodicHandle:
    """Schedule ``callback`` every ``interval`` virtual seconds.

    Parameters
    ----------
    start_at:
        Absolute time of the first call (defaults to ``now + interval``).
    count:
        Total number of calls; ``None`` means unbounded.

    Returns
    -------
    PeriodicHandle
        Cancel it to stop the whole series.
    """
    if interval <= 0:
        raise ClockError(f"periodic interval must be positive, got {interval!r}")
    if count is not None and count < 1:
        raise ClockError(f"periodic count must be at least 1, got {count!r}")

    handle = PeriodicHandle()
    calls_done = 0

    def _tick() -> None:
        nonlocal calls_done
        if handle.cancelled:
            return
        callback()
        calls_done += 1
        if count is not None and calls_done >= count:
            return
        handle._current = clock.call_later(interval, _tick)

    first = start_at if start_at is not None else clock.now() + interval
    handle._current = clock.call_at(first, _tick)
    return handle
