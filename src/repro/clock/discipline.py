"""Periodic clock synchronization discipline.

"The DMPS server build a communication group and initial a global clock
when the client side had initialed the communication configuration"
(Section 3).  Beyond the one-shot Cristian estimate, a real deployment
re-syncs periodically so drift cannot accumulate.  This module provides
that loop in two flavours:

* :class:`SimulatedSyncDiscipline` — a self-contained model for
  experiments: every ``interval`` it measures the local clock's true
  skew with an error drawn uniformly from ±``rtt/2`` (Cristian's error
  bound) and steps the clock by the estimate.  Used by the E1 extension
  to show admission + periodic sync bounds skew by roughly
  ``rtt/2 + drift x interval``.

* :func:`discipline_from_sample` — the correction rule the session
  layer applies after a real (simulated-network) sync exchange.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import ClockError
from .drift import DriftingClock
from .sync import SyncSample
from .virtual import PeriodicHandle, VirtualClock, periodic

__all__ = ["SimulatedSyncDiscipline", "discipline_from_sample"]


@dataclass
class SimulatedSyncDiscipline:
    """Periodically steps a drifting clock toward true time.

    Parameters
    ----------
    clock:
        True (global) time source.
    local_clock:
        The client clock to discipline.
    interval:
        Seconds of true time between corrections.
    rtt:
        Modeled sync round-trip; each correction leaves a residual
        error uniform in ±``rtt/2``.
    rng:
        Seeded randomness for the residual error.
    """

    clock: VirtualClock
    local_clock: DriftingClock
    interval: float = 5.0
    rtt: float = 0.04
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    corrections: int = 0
    _handle: PeriodicHandle | None = None

    def start(self) -> None:
        """Begin periodic corrections (idempotent)."""
        if self.interval <= 0:
            raise ClockError(f"sync interval must be positive, got {self.interval!r}")
        if self._handle is not None:
            return
        self._handle = periodic(self.clock, self.interval, self._correct)

    def stop(self) -> None:
        """Cancel future corrections."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _correct(self) -> None:
        residual = self.rng.uniform(-self.rtt / 2.0, self.rtt / 2.0)
        # Step the clock so that the remaining skew is only the
        # measurement residual (drift keeps accumulating afterwards).
        self.local_clock.adjust(-(self.local_clock.skew() - residual))
        self.corrections += 1


def discipline_from_sample(local_clock: DriftingClock, sample: SyncSample) -> float:
    """Step ``local_clock`` using one completed sync exchange.

    Applies the Cristian midpoint estimate as a clock step and returns
    the correction that was applied (negative when the clock was fast).
    """
    correction = -sample.offset_estimate
    local_clock.adjust(correction)
    return correction
