"""Clock substrate: virtual time, drifting local clocks, global sync.

Public API re-exports::

    from repro.clock import VirtualClock, DriftingClock, GlobalClockAdmission
"""

from .discipline import SimulatedSyncDiscipline, discipline_from_sample
from .drift import DriftingClock
from .sync import (
    AdmissionDecision,
    CristianSyncClient,
    GlobalClockAdmission,
    SyncSample,
)
from .virtual import EventHandle, PeriodicHandle, VirtualClock, periodic

__all__ = [
    "AdmissionDecision",
    "CristianSyncClient",
    "DriftingClock",
    "EventHandle",
    "GlobalClockAdmission",
    "PeriodicHandle",
    "SimulatedSyncDiscipline",
    "SyncSample",
    "VirtualClock",
    "discipline_from_sample",
    "periodic",
]
