"""Global clock synchronization and admission control.

The DMPS server "builds a communication group and initials a global
clock when the client side had initialed the communication
configuration" (paper, Section 3).  Two cooperating pieces implement
that here:

* :class:`CristianSyncClient` — estimates the offset between a client's
  :class:`~repro.clock.drift.DriftingClock` and the server's global
  clock from a request/response exchange, exactly like Cristian's
  algorithm: the client assumes the server's timestamp was taken at the
  midpoint of the round trip.

* :class:`GlobalClockAdmission` — the paper's admission rule for firing
  transitions at a client:

  - the client's clock is **faster** than the global clock → the
    transition is **held** until global time catches up with the
    scheduled local time;
  - the client's clock is **slower** → the transition **fires without
    delay**.

  The admission controller converts a locally-scheduled firing time into
  the true (virtual) time at which the firing is released.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClockError
from .drift import DriftingClock
from .virtual import VirtualClock

__all__ = [
    "SyncSample",
    "CristianSyncClient",
    "AdmissionDecision",
    "GlobalClockAdmission",
]


@dataclass(frozen=True)
class SyncSample:
    """One completed sync exchange.

    Attributes
    ----------
    request_local:
        Local clock reading when the request left the client.
    server_time:
        Global clock reading stamped by the server.
    response_local:
        Local clock reading when the response arrived.
    """

    request_local: float
    server_time: float
    response_local: float

    @property
    def round_trip(self) -> float:
        return self.response_local - self.request_local

    @property
    def offset_estimate(self) -> float:
        """Estimated (local - global) offset, Cristian midpoint rule."""
        midpoint = self.request_local + self.round_trip / 2.0
        return midpoint - self.server_time

    @property
    def error_bound(self) -> float:
        """Half the round trip: worst-case estimate error."""
        return self.round_trip / 2.0


class CristianSyncClient:
    """Cristian-style offset estimator for a drifting client clock.

    The client keeps the best (lowest round-trip) recent sample; its
    offset estimate is used by :class:`GlobalClockAdmission` and by the
    session layer to timestamp outgoing floor requests.
    """

    def __init__(self, local_clock: DriftingClock) -> None:
        self._local = local_clock
        self._best: SyncSample | None = None
        self._samples: list[SyncSample] = []

    @property
    def local_clock(self) -> DriftingClock:
        return self._local

    @property
    def samples(self) -> list[SyncSample]:
        """All recorded samples, oldest first (a copy)."""
        return list(self._samples)

    def record(self, sample: SyncSample) -> None:
        """Record a completed exchange.

        Raises
        ------
        ClockError
            If the sample's response precedes its request.
        """
        if sample.round_trip < 0:
            raise ClockError(
                f"negative round trip in sync sample: {sample.round_trip!r}"
            )
        self._samples.append(sample)
        if self._best is None or sample.round_trip < self._best.round_trip:
            self._best = sample

    def offset(self) -> float:
        """Best-known (local - global) offset.

        Raises
        ------
        ClockError
            If no sample has been recorded yet.
        """
        if self._best is None:
            raise ClockError("no sync sample recorded yet")
        return self._best.offset_estimate

    def error_bound(self) -> float:
        """Worst-case error of :meth:`offset`."""
        if self._best is None:
            raise ClockError("no sync sample recorded yet")
        return self._best.error_bound

    def global_now(self) -> float:
        """Current global-time estimate from the local clock."""
        return self._local.now() - self.offset()

    def synchronized(self) -> bool:
        """Whether at least one sync sample has been recorded."""
        return self._best is not None


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of the paper's global-clock admission rule.

    Attributes
    ----------
    held:
        ``True`` when the local clock was ahead and the firing had to
        wait for the global clock.
    release_global_time:
        Global (true) time at which the firing is released.
    hold_duration:
        How long the firing was held (0 for immediate release).
    """

    held: bool
    release_global_time: float
    hold_duration: float


class GlobalClockAdmission:
    """Centralized admission control for transition firings.

    The server owns the global clock (a plain :class:`VirtualClock` in
    the simulation — virtual time *is* global time).  Given a client
    whose clock is ahead or behind, :meth:`admit` applies Section 3's
    rule and returns when the firing is actually released.
    """

    def __init__(self, global_clock: VirtualClock) -> None:
        self._global = global_clock
        self._holds = 0
        self._immediates = 0
        self._total_hold_time = 0.0

    @property
    def global_clock(self) -> VirtualClock:
        return self._global

    def admit(self, client_clock: DriftingClock, scheduled_local_time: float) -> AdmissionDecision:
        """Apply the admission rule to a firing scheduled at a local time.

        The client believes the transition is due when its *local* clock
        reads ``scheduled_local_time``.  The rule compares the client's
        clock to the global clock:

        * local ahead of global (fast client): hold until the global
          clock reaches ``scheduled_local_time`` interpreted as global
          time — i.e. wait out the skew;
        * local behind (slow client): release immediately.
        """
        now_global = self._global.now()
        # The presentation timeline is authored in global time; the
        # client evaluates it on its local clock and contacts the
        # server when it believes the transition is due.  The server
        # releases the firing when the *global* clock reaches the
        # scheduled time: a fast client (which arrives early) is held,
        # a slow client (which arrives late) fires without delay —
        # exactly Section 3's rule, with the skew comparison subsumed
        # by the arrival time.
        release = max(now_global, scheduled_local_time)
        hold = release - now_global
        if hold > 0:
            self._holds += 1
            self._total_hold_time += hold
            return AdmissionDecision(
                held=True, release_global_time=release, hold_duration=hold
            )
        self._immediates += 1
        return AdmissionDecision(
            held=False, release_global_time=now_global, hold_duration=0.0
        )

    # ------------------------------------------------------------------
    # Statistics (used by benchmarks E1/E8)
    # ------------------------------------------------------------------
    @property
    def holds(self) -> int:
        """Number of firings that went through the hold path."""
        return self._holds

    @property
    def immediates(self) -> int:
        """Number of firings released without delay."""
        return self._immediates

    @property
    def total_hold_time(self) -> float:
        """Sum of all hold durations (seconds)."""
        return self._total_hold_time
