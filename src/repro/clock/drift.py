"""Drifting local clocks over virtual time.

The paper's global-clock admission control exists because client
machines' local clocks disagree: "If the clock in client side is faster
than global clock, the current transition will not fire until global
clock arrives. On the other hand, if the local clock in client side is
slower than global clock, the transition will be fire without delay."
(Section 3.)

:class:`DriftingClock` models a client clock as an affine function of
true (virtual) time::

    local(t) = offset + (1 + drift_rate) * t

``offset`` is the initial skew in seconds and ``drift_rate`` the
fractional frequency error (e.g. ``50e-6`` for a 50 ppm crystal).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClockError
from .virtual import VirtualClock

__all__ = ["DriftingClock"]


@dataclass
class DriftingClock:
    """A client-side clock that diverges from true virtual time.

    Parameters
    ----------
    clock:
        The true (simulation) time source.
    offset:
        Initial skew in seconds. Positive means the local clock is ahead.
    drift_rate:
        Fractional frequency error. Positive means the local clock runs
        fast. ``0.0`` gives a pure constant-offset clock.
    """

    clock: VirtualClock
    offset: float = 0.0
    drift_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.drift_rate <= -1.0:
            raise ClockError(
                f"drift_rate must be > -1 (clock cannot run backwards), "
                f"got {self.drift_rate!r}"
            )

    def now(self) -> float:
        """Local time as seen by this client."""
        return self.offset + (1.0 + self.drift_rate) * self.clock.now()

    def skew(self) -> float:
        """Current offset of local time from true time (positive = ahead)."""
        return self.now() - self.clock.now()

    def true_time_of(self, local_time: float) -> float:
        """Invert the clock model: true time at which ``local_time`` shows."""
        return (local_time - self.offset) / (1.0 + self.drift_rate)

    def adjust(self, correction: float) -> None:
        """Step the clock by ``correction`` seconds (sync discipline)."""
        self.offset += correction

    def slew_to(self, target_local_time: float) -> float:
        """Step the clock so that it currently reads ``target_local_time``.

        Returns the correction that was applied.
        """
        correction = target_local_time - self.now()
        self.adjust(correction)
        return correction
