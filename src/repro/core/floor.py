"""Floor tokens, requests, and grants.

Equal control mode serializes speakers with a token: "there is only one
(session chair or participant) can deliver at the same time until the
floor control token passed by the holder" (Section 4).

:class:`FloorToken` tracks the holder and the hand-off queue;
:class:`FloorRequest` / :class:`FloorGrant` are the wire-level records
the arbitrator consumes and produces, carrying the timestamps the
latency benchmarks (E3/E9) measure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from ..errors import FloorControlError
from .modes import FCMMode

__all__ = [
    "FloorToken",
    "FloorRequest",
    "FloorGrant",
    "RequestOutcome",
]


class RequestOutcome(Enum):
    """Terminal state of a floor request."""

    GRANTED = "granted"
    QUEUED = "queued"
    DENIED = "denied"
    ABORTED = "aborted"  # resources below b: Abort-Arbitrate


@dataclass(frozen=True)
class FloorRequest:
    """A member asking for the floor.

    Attributes
    ----------
    request_id:
        Server-assigned identifier.
    member:
        Requesting member name (``M`` in the Z spec).
    group:
        Group the request addresses (``G``).
    mode:
        Requested :class:`~repro.core.modes.FCMMode` (``F``).
    host:
        Originating station (``X``).
    target_member:
        ``DM`` — the peer for direct contact.
    target_group:
        ``DG`` — the subgroup for group discussion.
    requested_at:
        Global time the server received the request.
    """

    request_id: int
    member: str
    group: str
    mode: FCMMode
    host: str = ""
    target_member: str | None = None
    target_group: str | None = None
    requested_at: float = 0.0


@dataclass(frozen=True)
class FloorGrant:
    """The arbitrator's answer to a request."""

    request: FloorRequest
    outcome: RequestOutcome
    granted_at: float = 0.0
    #: Members whose media became available because of this grant.
    media_enabled: tuple[str, ...] = ()
    #: Members whose media was suspended to make room (Media-Suspend).
    suspended: tuple[str, ...] = ()
    reason: str = ""

    @property
    def latency(self) -> float:
        """Request-to-decision latency (seconds of global time)."""
        return self.granted_at - self.request.requested_at


@dataclass
class FloorToken:
    """The equal-control token for one group.

    The token starts with the session chair.  Requests queue in FIFO
    order; :meth:`pass_to` hands the token to the next waiter (or a
    named member) — only the current holder may pass it.
    """

    group: str
    holder: str | None = None
    queue: list[str] = field(default_factory=list)
    hand_offs: int = 0

    def request(self, member: str) -> bool:
        """Ask for the token.

        Returns ``True`` if the member became the holder immediately
        (token was free), ``False`` if queued.  Re-requests by the
        current holder or an already-queued member are idempotent.
        """
        if self.holder == member:
            return True
        if self.holder is None:
            self.holder = member
            return True
        if member not in self.queue:
            self.queue.append(member)
        return False

    def pass_to(self, holder: str, successor: str | None = None) -> str | None:
        """Release the token from ``holder``.

        ``successor`` names the next holder (must be waiting); when
        omitted the head of the queue takes over.  Returns the new
        holder, or ``None`` when nobody waits.

        Raises
        ------
        FloorControlError
            If ``holder`` does not actually hold the token, or the named
            successor is not waiting.
        """
        if self.holder != holder:
            raise FloorControlError(
                f"member {holder!r} does not hold the floor of {self.group!r}"
            )
        if successor is not None:
            if successor not in self.queue:
                raise FloorControlError(
                    f"successor {successor!r} is not waiting for the floor"
                )
            self.queue.remove(successor)
            self.holder = successor
        elif self.queue:
            self.holder = self.queue.pop(0)
        else:
            self.holder = None
        if self.holder is not None:
            self.hand_offs += 1
        return self.holder

    def withdraw(self, member: str) -> None:
        """Remove a member from the wait queue (e.g. they disconnected)."""
        if member in self.queue:
            self.queue.remove(member)

    def waiting(self) -> list[str]:
        """The current wait queue (a copy), FIFO order."""
        return list(self.queue)


class _RequestFactory:
    """Internal: monotonically numbered requests."""

    def __init__(self) -> None:
        self._ids = itertools.count()

    def make(
        self,
        member: str,
        group: str,
        mode: FCMMode,
        host: str = "",
        target_member: str | None = None,
        target_group: str | None = None,
        requested_at: float = 0.0,
    ) -> FloorRequest:
        return FloorRequest(
            request_id=next(self._ids),
            member=member,
            group=group,
            mode=mode,
            host=host,
            target_member=target_member,
            target_group=target_group,
            requested_at=requested_at,
        )
