"""The DMPS server's floor-control manager.

"The floor control model is managed by group administration of the DMPS
server.  All the users floor control request inputs are sent to the
server, the server will take the messages with their rationality to
handle the floor control in group communicating period.  If the users
floor control requests are permitted, the request will combine with the
global clock control and with the same highest priority." (Section 4.)

:class:`FloorControlServer` composes the registry, resource model,
arbitrator, token machinery and event log into the single object the
session layer (and the benchmarks) drive.  It runs on a
:class:`~repro.clock.virtual.VirtualClock` so decisions carry global
timestamps; the actual network transport lives one layer up in
:mod:`repro.session`.
"""

from __future__ import annotations


from ..clock.virtual import VirtualClock
from ..errors import FloorControlError
from ..trace import timing as _timing
from .arbitrator import Arbitrator
from .events import EventKind, EventLog
from .floor import FloorGrant, RequestOutcome, _RequestFactory
from .groups import GroupRegistry, Invitation, Member, Role
from .modes import FCMMode
from .resources import ResourceModel, ResourceVector

__all__ = ["FloorControlServer"]

_OUTCOME_EVENT = {
    RequestOutcome.GRANTED: EventKind.GRANT,
    RequestOutcome.QUEUED: EventKind.QUEUE,
    RequestOutcome.DENIED: EventKind.DENY,
    RequestOutcome.ABORTED: EventKind.ABORT,
}


class FloorControlServer:
    """Group administration plus floor control for one DMPS session.

    Parameters
    ----------
    clock:
        The server's global clock.
    resources:
        Station resource model (thresholds ``a``/``b``).
    session_group:
        Identifier of the main session group.
    chair:
        Name of the session chair (the teacher); registered
        automatically with :class:`~repro.core.groups.Role.CHAIR`.
    log_capacity:
        Ring-buffer capacity of the event log; ``None`` keeps the
        full transcript.  Fleet runs bound per-session memory by
        passing a finite capacity here.
    """

    def __init__(
        self,
        clock: VirtualClock,
        resources: ResourceModel,
        session_group: str = "session",
        chair: str = "teacher",
        log_capacity: int | None = None,
    ) -> None:
        self.clock = clock
        self.registry = GroupRegistry()
        self.resources = resources
        self.arbitrator = Arbitrator(self.registry, resources)
        self.log = EventLog(capacity=log_capacity)
        self.session_group = session_group
        self._requests = _RequestFactory()
        self._mode: dict[str, FCMMode] = {}
        self.registry.register_member(Member(name=chair, role=Role.CHAIR))
        self.registry.create_group(session_group, chair=chair)
        self._mode[session_group] = FCMMode.FREE_ACCESS
        self.chair = chair

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(self, member_name: str, host: str = "", role: Role = Role.PARTICIPANT) -> Member:
        """Register a member and add them to the main session group.

        A member who previously left is re-admitted with their existing
        registration (priority and role are preserved).
        """
        try:
            member = self.registry.member(member_name)
        except FloorControlError:
            member = Member(name=member_name, role=role, host=host)
            self.registry.register_member(member)
        self.registry.join(self.session_group, member_name)
        self.log.append(self.clock.now(), EventKind.JOIN, member_name, self.session_group)
        return member

    def leave(self, member_name: str) -> None:
        """Remove a member from the session (and any token queues).

        A leaving floor holder hands the token to the next queued
        member — never back to themselves — or the floor clears when
        nobody waits; each hand-off is logged as a ``TOKEN_PASS`` so
        the transcript explains why the holder changed.
        """
        now = self.clock.now()
        for group in self.registry.joined_groups(member_name):
            token = self.arbitrator.token(group.group_id)
            token.withdraw(member_name)
            if token.holder == member_name:
                new_holder = token.pass_to(member_name)
                self.log.append(
                    now, EventKind.TOKEN_PASS, member_name,
                    group.group_id, new_holder or "",
                    data={"to": new_holder},
                )
            if group.chair != member_name:
                self.registry.leave(group.group_id, member_name)
        self.log.append(now, EventKind.LEAVE, member_name, self.session_group)

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def mode_of(self, group_id: str) -> FCMMode:
        """The current floor mode of a group."""
        if group_id not in self._mode:
            raise FloorControlError(f"no mode set for group {group_id!r}")
        return self._mode[group_id]

    def set_mode(self, group_id: str, mode: FCMMode, by: str) -> None:
        """Change a group's floor mode; only its chair may do so."""
        group = self.registry.group(group_id)
        if by != group.chair:
            raise FloorControlError(
                f"only chair {group.chair!r} may change the mode of {group_id!r}"
            )
        previous = self._mode.get(group_id)
        self._mode[group_id] = mode
        self.log.append(
            self.clock.now(), EventKind.MODE_CHANGE, by, group_id, mode.value,
            data={
                "from": previous.value if previous is not None else None,
                "to": mode.value,
            },
        )

    # ------------------------------------------------------------------
    # Floor requests
    # ------------------------------------------------------------------
    def request_floor(
        self,
        member: str,
        group: str | None = None,
        mode: FCMMode | None = None,
        target_member: str | None = None,
        target_group: str | None = None,
        demand: ResourceVector | None = None,
        requested_at: float | None = None,
    ) -> FloorGrant:
        """Submit a floor request and arbitrate it immediately.

        ``requested_at`` defaults to the current global time; the
        session layer passes the send timestamp so grant latency
        includes network transit.
        """
        group = group if group is not None else self.session_group
        mode = mode if mode is not None else self.mode_of(group)
        now = self.clock.now()
        request = self._requests.make(
            member=member,
            group=group,
            mode=mode,
            host=self._host_of(member),
            target_member=target_member,
            target_group=target_group,
            requested_at=requested_at if requested_at is not None else now,
        )
        self.log.append(
            now, EventKind.REQUEST, member, group, mode.value,
            data={"mode": mode.value},
        )
        grant = self.arbitrator.arbitrate(request, demand=demand, now=now)
        outcome_data: dict[str, object] = {
            "reason": grant.reason or None,
            "mode": mode.value,
        }
        if grant.outcome is RequestOutcome.QUEUED:
            token = self.arbitrator.peek_token(group)
            waiting = token.waiting() if token is not None else []
            if member in waiting:
                outcome_data["position"] = waiting.index(member) + 1
        self.log.append(
            now,
            _OUTCOME_EVENT[grant.outcome],
            member,
            group,
            grant.reason or mode.value,
            data=outcome_data,
        )
        for victim in grant.suspended:
            self.log.append(now, EventKind.SUSPEND, victim, group)
        return grant

    def request_floor_batch(
        self, submissions: list[tuple[str, FCMMode | None, float | None]]
    ) -> list[FloorGrant]:
        """Arbitrate one tick's worth of session-group requests together.

        ``submissions`` is ``(member, mode, requested_at)`` triples in
        arrival order (``None`` falls back to the group mode / current
        time).  Decisions are identical to calling
        :meth:`request_floor` once per triple — the arbitrator applies
        the same state transitions in the same order — but the batch
        shape is what the fleet's per-tick scheduler drives.  The
        transcript differs in layout only: all ``REQUEST`` events are
        logged before the outcomes, and queued requests are not
        annotated with a queue position.
        """
        with _timing.maybe_span("server.request_batch"):
            return self._request_floor_batch(submissions)

    def _request_floor_batch(
        self, submissions: list[tuple[str, FCMMode | None, float | None]]
    ) -> list[FloorGrant]:
        now = self.clock.now()
        requests = []
        for member, mode, requested_at in submissions:
            mode = mode if mode is not None else self.mode_of(self.session_group)
            requests.append(
                self._requests.make(
                    member=member,
                    group=self.session_group,
                    mode=mode,
                    host=self._host_of(member),
                    requested_at=requested_at if requested_at is not None else now,
                )
            )
            self.log.append(
                now, EventKind.REQUEST, member, self.session_group, mode.value,
                data={"mode": mode.value},
            )
        with _timing.maybe_span("arbitrate.batch"):
            grants = self.arbitrator.arbitrate_batch(requests, now=now)
        for request, grant in zip(requests, grants):
            self.log.append(
                now,
                _OUTCOME_EVENT[grant.outcome],
                request.member,
                request.group,
                grant.reason or request.mode.value,
                data={"reason": grant.reason or None, "mode": request.mode.value},
            )
            for victim in grant.suspended:
                self.log.append(now, EventKind.SUSPEND, victim, request.group)
        return grants

    def release_floor(
        self, group_id: str, member: str, successor: str | None = None
    ) -> str | None:
        """Pass the equal-control token; logs and returns the new holder."""
        new_holder = self.arbitrator.release_floor(group_id, member, successor)
        self.log.append(
            self.clock.now(),
            EventKind.TOKEN_PASS,
            member,
            group_id,
            new_holder or "",
            data={"to": new_holder},
        )
        return new_holder

    def current_speakers(self, group_id: str) -> set[str]:
        """Members currently allowed to deliver in a group.

        * free access — every group member;
        * equal control — the token holder only;
        * group discussion / direct contact — the subgroup's members.
        """
        mode = self.mode_of(group_id)
        group = self.registry.group(group_id)
        if mode is FCMMode.FREE_ACCESS:
            return set(group.members)
        if mode is FCMMode.EQUAL_CONTROL:
            # peek: a query must not materialize a token (observers
            # like the session monitors rely on reads being free of
            # side effects).
            token = self.arbitrator.peek_token(group_id)
            holder = token.holder if token is not None else None
            return {holder} if holder else set()
        return set(group.members)

    # ------------------------------------------------------------------
    # Subgroups (group discussion / direct contact)
    # ------------------------------------------------------------------
    def open_discussion(self, creator: str) -> str:
        """Create a discussion subgroup chaired by ``creator``."""
        group = self.registry.create_subgroup(self.session_group, creator)
        self._mode[group.group_id] = FCMMode.GROUP_DISCUSSION
        return group.group_id

    def invite(self, group_id: str, inviter: str, invitee: str) -> Invitation:
        """Send a subgroup invitation (logged)."""
        invitation = self.registry.invite(group_id, inviter, invitee)
        self.log.append(
            self.clock.now(), EventKind.INVITE, inviter, group_id, invitee,
            data={"invitee": invitee},
        )
        return invitation

    def respond(self, invitation_id: int, accept: bool) -> Invitation:
        """Apply an invitee's accept/decline decision (logged)."""
        invitation = self.registry.respond(invitation_id, accept)
        self.log.append(
            self.clock.now(),
            EventKind.INVITE_RESPONSE,
            invitation.invitee,
            invitation.group_id,
            "accept" if accept else "decline",
            data={"accepted": accept},
        )
        return invitation

    def open_direct_contact(self, initiator: str, peer: str) -> str:
        """Create-and-invite for the two-member direct contact mode.

        Returns the private group id; the peer still must accept the
        pending invitation (fetch via ``pending_invitations_for``).
        """
        group = self.registry.create_subgroup(self.session_group, initiator)
        self._mode[group.group_id] = FCMMode.DIRECT_CONTACT
        self.registry.invite(group.group_id, initiator, peer)
        self.log.append(
            self.clock.now(), EventKind.INVITE, initiator, group.group_id, peer,
            data={"invitee": peer},
        )
        return group.group_id

    # ------------------------------------------------------------------
    # Resource events
    # ------------------------------------------------------------------
    def on_resource_recovery(self, group_id: str | None = None) -> list[str]:
        """Resume suspended media after external load drops (E4)."""
        group_id = group_id if group_id is not None else self.session_group
        resumed = self.arbitrator.recover_resources(group_id)
        for member in resumed:
            self.log.append(self.clock.now(), EventKind.RESUME, member, group_id)
        return resumed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _host_of(self, member: str) -> str:
        try:
            return self.registry.member(member).host
        except FloorControlError:
            return ""
