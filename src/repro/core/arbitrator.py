"""``FCM-Arbitrate`` — the floor control arbitration algorithm.

This is the paper's central algorithm (Section 3, given in Z notation).
Pseudo-structure of the spec, de-obfuscated from the OCR::

    FCM-Arbitrate(G, M, F, X, DG, DM) ≙
      if G ∉ Joined-Groups(M, X):            Abort-Arbitrate(G, X)
      if Resource-Available(G, F, X) >= a:   -- full service
          F = Free-Access       ⇒ ∀ M ∈ G • Media-Available(G, M, X)
          F = Equal-Control     ⇒ M ∈ G ∧ Priority >= 2 ⇒ Media-Available(G, M, X)
          F = Group-Discussion  ⇒ M ∈ DG ∧ Priority >= 2 ⇒ Media-Available(DG, M, X)
          F = Direct-Contact    ⇒ M ∈ G ∧ DM ∈ G ∧ Priority >= 2
                                   ⇒ Media-Available for M and DM
      if b <= Resource-Available(G, F, X) < a:
          Media-Suspend(G, M, X, DG, DM)     -- then grant as above
      if Resource-Available(G, F, X) < b:    Abort-Arbitrate(G, X)

Interpretation choices (documented per DESIGN.md):

* ``Priority >= 2`` is an *effective* priority: chairs carry base
  priority >= 2; an ordinary participant reaches 2 while holding the
  equal-control token (which realizes the prose "only one ... can
  deliver at the same time until the floor control token passed by the
  holder") or while chairing / being admitted into a subgroup.
* A member failing the priority guard under Equal Control is *queued*
  on the token rather than rejected outright — the prose describes
  token passing, so waiting is the intended behaviour.
* ``Media-Suspend`` uses the requester's priority as the cut-off and
  suspends lowest-priority media first (see
  :mod:`repro.core.suspension`).

All decisions are pure given the registry/ledger/token state, which is
what makes the arbitration property-testable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FloorControlError, NotInGroupError
from .floor import FloorGrant, FloorRequest, FloorToken, RequestOutcome
from .groups import GroupRegistry
from .modes import FCMMode, MIN_CONTROLLED_PRIORITY
from .resources import ResourceLevel, ResourceModel, ResourceVector
from .suspension import MediaLedger, SuspensionManager, plan_suspension

__all__ = ["Arbitrator", "ArbitrationStats"]

#: Shared zero-demand vector for pure-signalling requests.  Demand
#: vectors are never mutated by arbitration, so every such request can
#: reuse one instance instead of allocating per call — measurable on
#: the fleet hot path (10k+ sessions arbitrating every tick).
_ZERO_DEMAND = ResourceVector.zeros()


@dataclass
class ArbitrationStats:
    """Counters for the E3/E4/E9 experiments."""

    granted: int = 0
    queued: int = 0
    denied: int = 0
    aborted: int = 0
    degraded_grants: int = 0

    @property
    def decisions(self) -> int:
        return self.granted + self.queued + self.denied + self.aborted


class Arbitrator:
    """Server-side implementation of ``FCM-Arbitrate``.

    Parameters
    ----------
    registry:
        Group/member state (``Joined-Groups``).
    resources:
        Station resource model with the ``a``/``b`` thresholds.
    """

    def __init__(self, registry: GroupRegistry, resources: ResourceModel) -> None:
        self.registry = registry
        self.resources = resources
        self.ledger = MediaLedger(resources)
        self.suspension = SuspensionManager(self.ledger)
        self.stats = ArbitrationStats()
        self._tokens: dict[str, FloorToken] = {}

    # ------------------------------------------------------------------
    # Token access
    # ------------------------------------------------------------------
    def token(self, group_id: str) -> FloorToken:
        """The equal-control token of a group (created on first use)."""
        if group_id not in self._tokens:
            self.registry.group(group_id)
            self._tokens[group_id] = FloorToken(group=group_id)
        return self._tokens[group_id]

    def peek_token(self, group_id: str) -> FloorToken | None:
        """The group's token if one exists, with *no* side effects —
        the read-only accessor observers (e.g. the session monitors of
        :mod:`repro.check.monitor`) use so that watching a run never
        changes its state."""
        return self._tokens.get(group_id)

    def effective_priority(self, member_name: str, group_id: str) -> int:
        """Base priority, elevated to the controlled-mode threshold for
        the token holder and for subgroup chairs."""
        member = self.registry.member(member_name)
        priority = member.priority
        token = self._tokens.get(group_id)
        if token is not None and token.holder == member_name:
            priority = max(priority, MIN_CONTROLLED_PRIORITY)
        group = self.registry.group(group_id)
        if group.chair == member_name:
            priority = max(priority, MIN_CONTROLLED_PRIORITY)
        return priority

    # ------------------------------------------------------------------
    # FCM-Arbitrate
    # ------------------------------------------------------------------
    def arbitrate(
        self,
        request: FloorRequest,
        demand: ResourceVector | None = None,
        now: float = 0.0,
    ) -> FloorGrant:
        """Decide one floor request.

        ``demand`` is the resource cost of the media the grant would
        activate (defaults to zero — pure signalling).  Returns a
        :class:`FloorGrant`; resource exhaustion yields outcome
        ``ABORTED`` (the Z spec's ``Abort-Arbitrate``) rather than an
        exception, because the server must keep serving other groups.
        """
        demand = demand if demand is not None else _ZERO_DEMAND
        # Guard 1: G ∈ Joined-Groups(M, X).
        try:
            self.registry.require_membership(request.group, request.member)
        except (NotInGroupError, FloorControlError) as error:
            self.stats.denied += 1
            return FloorGrant(
                request=request,
                outcome=RequestOutcome.DENIED,
                granted_at=now,
                reason=str(error),
            )
        # Guard 2: resource classification against a and b.  The level
        # is judged on *current* availability (the Z spec's
        # Resource-Available); the new demand is then either covered by
        # the headroom or recovered through Media-Suspend.
        level = self.resources.level()
        if level is ResourceLevel.EXHAUSTED:
            self.stats.aborted += 1
            return FloorGrant(
                request=request,
                outcome=RequestOutcome.ABORTED,
                granted_at=now,
                reason="resources below minimal threshold b",
            )
        suspended: tuple[str, ...] = ()
        needs_room = self.resources.headroom_above_minimal(demand) < 0
        if level is ResourceLevel.DEGRADED or needs_room:
            suspended = tuple(self._media_suspend(request, demand))
            # Re-classify: if suspension could not recover past b, abort.
            if self.resources.headroom_above_minimal(demand) < 0:
                self.stats.aborted += 1
                return FloorGrant(
                    request=request,
                    outcome=RequestOutcome.ABORTED,
                    granted_at=now,
                    suspended=suspended,
                    reason="degraded and no suspendable lower-priority media",
                )
        # Guard 3: per-mode admission.
        grant = self._admit_by_mode(request, now, suspended)
        if grant.outcome is RequestOutcome.GRANTED:
            self.stats.granted += 1
            if level is ResourceLevel.DEGRADED:
                self.stats.degraded_grants += 1
        elif grant.outcome is RequestOutcome.QUEUED:
            self.stats.queued += 1
        else:
            self.stats.denied += 1
        return grant

    def arbitrate_batch(
        self,
        requests: list[FloorRequest],
        demands: list[ResourceVector | None] | None = None,
        now: float = 0.0,
    ) -> list[FloorGrant]:
        """Decide a tick's worth of requests in arrival order.

        The fleet scheduler collects every request due in one tick and
        submits them together; decisions are identical to calling
        :meth:`arbitrate` once per request (same order, same state
        transitions), but the batch shape keeps the hot loop free of
        per-call framing and is the seam the future array-compiled
        core replaces.
        """
        if demands is None:
            return [self.arbitrate(request, now=now) for request in requests]
        if len(demands) != len(requests):
            raise FloorControlError(
                f"batch mismatch: {len(requests)} requests, {len(demands)} demands"
            )
        return [
            self.arbitrate(request, demand=demand, now=now)
            for request, demand in zip(requests, demands)
        ]

    # ------------------------------------------------------------------
    # Mode rules
    # ------------------------------------------------------------------
    def _admit_by_mode(
        self, request: FloorRequest, now: float, suspended: tuple[str, ...]
    ) -> FloorGrant:
        mode = request.mode
        if mode is FCMMode.FREE_ACCESS:
            # ∀ M ∈ G • Media-Available — everyone may send.
            return self._granted(request, now, (request.member,), suspended)
        if mode is FCMMode.EQUAL_CONTROL:
            return self._admit_equal_control(request, now, suspended)
        if mode is FCMMode.GROUP_DISCUSSION:
            return self._admit_group_discussion(request, now, suspended)
        return self._admit_direct_contact(request, now, suspended)

    def _admit_equal_control(
        self, request: FloorRequest, now: float, suspended: tuple[str, ...]
    ) -> FloorGrant:
        token = self.token(request.group)
        became_holder = token.request(request.member)
        if not became_holder:
            return FloorGrant(
                request=request,
                outcome=RequestOutcome.QUEUED,
                granted_at=now,
                suspended=suspended,
                reason=f"floor held by {token.holder!r}",
            )
        # Holder passes the Priority >= 2 guard by construction.
        if self.effective_priority(request.member, request.group) < MIN_CONTROLLED_PRIORITY:
            raise FloorControlError(
                "internal: token holder below controlled-mode priority"
            )  # pragma: no cover - invariant
        return self._granted(request, now, (request.member,), suspended)

    def _admit_group_discussion(
        self, request: FloorRequest, now: float, suspended: tuple[str, ...]
    ) -> FloorGrant:
        subgroup_id = request.target_group
        if subgroup_id is None:
            return FloorGrant(
                request=request,
                outcome=RequestOutcome.DENIED,
                granted_at=now,
                suspended=suspended,
                reason="group discussion requires a target subgroup",
            )
        try:
            subgroup = self.registry.group(subgroup_id)
            self.registry.require_membership(subgroup_id, request.member)
        except (NotInGroupError, FloorControlError) as error:
            return FloorGrant(
                request=request,
                outcome=RequestOutcome.DENIED,
                granted_at=now,
                suspended=suspended,
                reason=str(error),
            )
        if subgroup.parent != request.group:
            return FloorGrant(
                request=request,
                outcome=RequestOutcome.DENIED,
                granted_at=now,
                suspended=suspended,
                reason=f"subgroup {subgroup_id!r} does not belong to {request.group!r}",
            )
        # Within the subgroup everyone accepted may send together; the
        # Priority >= 2 guard is met through subgroup admission (the
        # chair invited them, elevating their standing in DG).
        return self._granted(request, now, (request.member,), suspended)

    def _admit_direct_contact(
        self, request: FloorRequest, now: float, suspended: tuple[str, ...]
    ) -> FloorGrant:
        peer = request.target_member
        if peer is None:
            return FloorGrant(
                request=request,
                outcome=RequestOutcome.DENIED,
                granted_at=now,
                suspended=suspended,
                reason="direct contact requires a target member",
            )
        try:
            self.registry.require_membership(request.group, peer)
        except (NotInGroupError, FloorControlError) as error:
            return FloorGrant(
                request=request,
                outcome=RequestOutcome.DENIED,
                granted_at=now,
                suspended=suspended,
                reason=str(error),
            )
        if peer == request.member:
            return FloorGrant(
                request=request,
                outcome=RequestOutcome.DENIED,
                granted_at=now,
                suspended=suspended,
                reason="direct contact requires two distinct members",
            )
        # M ∈ G ∧ DM ∈ G ⇒ media available for both endpoints.
        return self._granted(request, now, (request.member, peer), suspended)

    # ------------------------------------------------------------------
    # Media-Suspend hook
    # ------------------------------------------------------------------
    def _media_suspend(self, request: FloorRequest, demand: ResourceVector) -> list[str]:
        requester_priority = self.effective_priority(request.member, request.group)
        shortfall = -self.resources.headroom_above_minimal(demand)
        victims = plan_suspension(
            self.ledger.active(request.group),
            requester_priority,
            shortfall,
        )
        return self.suspension.suspend(request.group, victims)

    def _granted(
        self,
        request: FloorRequest,
        now: float,
        media_enabled: tuple[str, ...],
        suspended: tuple[str, ...],
    ) -> FloorGrant:
        return FloorGrant(
            request=request,
            outcome=RequestOutcome.GRANTED,
            granted_at=now,
            media_enabled=media_enabled,
            suspended=suspended,
        )

    # ------------------------------------------------------------------
    # Token life cycle helpers the server exposes
    # ------------------------------------------------------------------
    def release_floor(self, group_id: str, member: str, successor: str | None = None) -> str | None:
        """Pass the equal-control token; returns the new holder."""
        return self.token(group_id).pass_to(member, successor)

    def recover_resources(self, group_id: str) -> list[str]:
        """Resume suspended media after resources recover (E4)."""
        return self.suspension.resume_where_possible(group_id, self.resources)
