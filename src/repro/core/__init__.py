"""Floor control — the paper's primary contribution.

Public API::

    from repro.core import (
        FCMMode, PolicyFactor,
        Member, Group, GroupRegistry, Role,
        ResourceModel, ResourceVector, ResourceLevel,
        FloorControlServer, Arbitrator,
        FloorRequest, FloorGrant, FloorToken, RequestOutcome,
    )
"""

from .arbitrator import ArbitrationStats, Arbitrator
from .events import EventKind, EventLog, FloorEvent
from .floor import FloorGrant, FloorRequest, FloorToken, RequestOutcome
from .groups import Group, GroupRegistry, Invitation, InvitationState, Member, Role
from .modes import MIN_CONTROLLED_PRIORITY, FCMMode, PolicyFactor
from .resources import ResourceLevel, ResourceModel, ResourceVector
from .server import FloorControlServer
from .stations import StationArbiter
from .suspension import ActiveMedia, MediaLedger, SuspensionManager, plan_suspension

__all__ = [
    "ActiveMedia",
    "ArbitrationStats",
    "Arbitrator",
    "EventKind",
    "EventLog",
    "FCMMode",
    "FloorControlServer",
    "FloorEvent",
    "FloorGrant",
    "FloorRequest",
    "FloorToken",
    "Group",
    "GroupRegistry",
    "Invitation",
    "InvitationState",
    "MIN_CONTROLLED_PRIORITY",
    "MediaLedger",
    "Member",
    "PolicyFactor",
    "RequestOutcome",
    "ResourceLevel",
    "ResourceModel",
    "ResourceVector",
    "Role",
    "StationArbiter",
    "SuspensionManager",
    "plan_suspension",
]
