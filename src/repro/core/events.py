"""Floor-control event log — compatibility facade over
:mod:`repro.events`.

The event subsystem moved to :mod:`repro.events`: typed payloads live
in :mod:`repro.events.types`, the indexed bus in
:mod:`repro.events.bus`, and transcript record/replay in
:mod:`repro.events.transcript` / :mod:`repro.events.replay`.  This
module keeps the seed-era import surface — ``EventKind``,
``FloorEvent`` and ``EventLog`` — so every existing call site keeps
working; :class:`EventLog` is the bus under its historical name.
"""

from __future__ import annotations

from ..events import EventBus, EventKind, FloorEvent

__all__ = ["EventKind", "FloorEvent", "EventLog"]


class EventLog(EventBus):
    """The seed-era name for the indexed :class:`~repro.events.bus.
    EventBus`.

    Same append/query/subscribe API as always — ``of_kind`` /
    ``for_member`` / ``for_group`` / ``between`` / ``tail`` — now
    served from indexes instead of full scans, with ``subscribe``
    grown optional kind/member/group filters and exception-isolated
    dispatch (see :mod:`repro.events.bus`).  ``metrics()`` folds the
    retained events through the shared streaming kernel
    (:mod:`repro.metrics`); for all-time numbers on a ring-bounded
    log, subscribe a live :class:`~repro.metrics.fold.MetricsFold`
    from birth instead.
    """
