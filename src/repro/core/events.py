"""Floor-control event log.

Every arbitration decision, token hand-off, suspension and resumption
is appended here with its global timestamp.  The benchmarks read the
log to compute grant latencies and fairness; the examples print it as
the session transcript.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterator

__all__ = ["EventKind", "FloorEvent", "EventLog"]


class EventKind(Enum):
    REQUEST = "request"
    GRANT = "grant"
    QUEUE = "queue"
    DENY = "deny"
    ABORT = "abort"
    TOKEN_PASS = "token_pass"
    SUSPEND = "suspend"
    RESUME = "resume"
    JOIN = "join"
    LEAVE = "leave"
    INVITE = "invite"
    INVITE_RESPONSE = "invite_response"
    MODE_CHANGE = "mode_change"
    DISCONNECT = "disconnect"
    RECONNECT = "reconnect"


@dataclass(frozen=True)
class FloorEvent:
    """One timestamped entry in the session transcript."""

    time: float
    kind: EventKind
    member: str
    group: str
    detail: str = ""


class EventLog:
    """Append-only event history with simple query helpers.

    Listeners registered with :meth:`subscribe` observe every appended
    event — this is how the live session monitors
    (:mod:`repro.check.monitor`) re-check invariants at each floor
    grant/release/join/leave without polling.
    """

    def __init__(self) -> None:
        self._events: list[FloorEvent] = []
        self._listeners: list[Callable[[FloorEvent], None]] = []

    def append(
        self, time: float, kind: EventKind, member: str, group: str, detail: str = ""
    ) -> FloorEvent:
        """Record one event; returns the stored entry.

        Listeners run synchronously after the event is stored, so a
        listener reading the log sees the event it was called for.
        """
        event = FloorEvent(time=time, kind=kind, member=member, group=group, detail=detail)
        self._events.append(event)
        for listener in tuple(self._listeners):
            listener(event)
        return event

    def subscribe(
        self, listener: Callable[[FloorEvent], None]
    ) -> Callable[[], None]:
        """Register a listener for future appends; returns an
        unsubscribe callable (idempotent)."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FloorEvent]:
        return iter(self._events)

    def of_kind(self, kind: EventKind) -> list[FloorEvent]:
        """All events of one kind, in order."""
        return [event for event in self._events if event.kind is kind]

    def for_member(self, member: str) -> list[FloorEvent]:
        """All events attributed to one member."""
        return [event for event in self._events if event.member == member]

    def for_group(self, group: str) -> list[FloorEvent]:
        """All events of one group."""
        return [event for event in self._events if event.group == group]

    def between(self, start: float, end: float) -> list[FloorEvent]:
        """Events with ``start <= time <= end`` (inclusive)."""
        return [event for event in self._events if start <= event.time <= end]

    def tail(self, count: int = 10) -> list[FloorEvent]:
        """The most recent ``count`` events."""
        return self._events[-count:]
