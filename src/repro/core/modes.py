"""Floor control modes and policy factors (paper, Section 3).

The paper's Z terminology::

    FCM-Mode       := Free-Access | Equal-Control |
                      Group-Discussion | Direct-Contact
    Policy-Factors := NETWORK-BOUND | CPU-BOUND | MEMORY-BOUND

Mode semantics (prose of Section 4):

* **Free Access** — "everyone (ex: including session chair and
  participant) can send the message to the message-window or
  whiteboard ... like general discussion with no privacy and priority."
* **Equal Control** — "there is only one (session chair or participant)
  can deliver at the same time until the floor control token passed by
  the holder."
* **Group Discussion** — "a user can create a new group to invite
  others ... all participants in the same group can send message
  together, we regard it as private communication group."
* **Direct Contact** — "two people can communicate directly in a
  private window and communicate with others via free access, equal
  control, and direct contact at the same time."
"""

from __future__ import annotations

from enum import Enum

__all__ = ["FCMMode", "PolicyFactor", "MIN_CONTROLLED_PRIORITY"]


class FCMMode(Enum):
    """The four floor control modes."""

    FREE_ACCESS = "free_access"
    EQUAL_CONTROL = "equal_control"
    GROUP_DISCUSSION = "group_discussion"
    DIRECT_CONTACT = "direct_contact"

    @property
    def is_exclusive(self) -> bool:
        """Whether at most one member may hold the floor at a time."""
        return self is FCMMode.EQUAL_CONTROL

    @property
    def needs_subgroup(self) -> bool:
        """Whether the mode operates on an invited subgroup."""
        return self in (FCMMode.GROUP_DISCUSSION, FCMMode.DIRECT_CONTACT)


class PolicyFactor(Enum):
    """Which resource dimension currently binds admission decisions."""

    NETWORK_BOUND = "network_bound"
    CPU_BOUND = "cpu_bound"
    MEMORY_BOUND = "memory_bound"


#: The Z spec grants media in the controlled modes only to members with
#: ``Priority >= 2``.  Ordinary participants have base priority 1 and
#: reach 2 by holding the floor token (or by being a session chair).
MIN_CONTROLLED_PRIORITY = 2
