"""The paper's resource model: ``Resource == Network x CPU x Memory``.

Section 3 defines two global thresholds::

    a : REAL    -- "the basic system resource available"
    b : REAL    -- "the minimal system resource available"
    a > b       -- "so that different levels of treatment are used when
                    the source is not sufficient"

``Resource-Available(...) >= a`` means full service; a value in
``[b, a)`` triggers ``Media-Suspend`` of the lowest-priority member's
media; below ``b`` the arbitration aborts (``Abort-Arbitrate``).

:class:`ResourceVector` is the measurable triple; :class:`ResourceModel`
holds capacities and thresholds and classifies the current load into a
:class:`ResourceLevel`.  The *policy factor* selects which dimension is
the binding one when the paper's scalar comparison is applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import FloorControlError
from .modes import PolicyFactor

__all__ = ["ResourceVector", "ResourceLevel", "ResourceModel"]


@dataclass(frozen=True)
class ResourceVector:
    """A point in ``Network x CPU x Memory`` space.

    Units: network in kbit/s, cpu as a share in [0, n_cores], memory in
    MB.  Semantics (capacity vs demand vs availability) come from
    context.
    """

    network_kbps: float = 0.0
    cpu_share: float = 0.0
    memory_mb: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.network_kbps + other.network_kbps,
            self.cpu_share + other.cpu_share,
            self.memory_mb + other.memory_mb,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.network_kbps - other.network_kbps,
            self.cpu_share - other.cpu_share,
            self.memory_mb - other.memory_mb,
        )

    def scaled(self, factor: float) -> "ResourceVector":
        """A copy with every dimension multiplied by ``factor``."""
        return ResourceVector(
            self.network_kbps * factor,
            self.cpu_share * factor,
            self.memory_mb * factor,
        )

    def dominates(self, other: "ResourceVector") -> bool:
        """Component-wise >= (enough of every dimension)."""
        return (
            self.network_kbps >= other.network_kbps
            and self.cpu_share >= other.cpu_share
            and self.memory_mb >= other.memory_mb
        )

    def component(self, factor: PolicyFactor) -> float:
        """The dimension selected by a policy factor."""
        if factor is PolicyFactor.NETWORK_BOUND:
            return self.network_kbps
        if factor is PolicyFactor.CPU_BOUND:
            return self.cpu_share
        return self.memory_mb

    @staticmethod
    def zeros() -> "ResourceVector":
        return ResourceVector(0.0, 0.0, 0.0)


class ResourceLevel(Enum):
    """Classification of current availability against ``a`` and ``b``."""

    SUFFICIENT = "sufficient"  # available >= a : full service
    DEGRADED = "degraded"      # b <= available < a : Media-Suspend
    EXHAUSTED = "exhausted"    # available < b : Abort-Arbitrate

    @property
    def admits_new_media(self) -> bool:
        return self is not ResourceLevel.EXHAUSTED


class ResourceModel:
    """Capacity, usage accounting, and the a/b classification.

    Parameters
    ----------
    capacity:
        Total host/station resources.
    basic_fraction:
        The ``a`` threshold as a fraction of capacity: full service
        requires at least this fraction *available*.
    minimal_fraction:
        The ``b`` threshold as a fraction of capacity.  Must be strictly
        below ``basic_fraction`` (the paper requires ``a > b``).
    policy_factor:
        Which dimension the scalar a/b comparison applies to.
    """

    def __init__(
        self,
        capacity: ResourceVector,
        basic_fraction: float = 0.3,
        minimal_fraction: float = 0.1,
        policy_factor: PolicyFactor = PolicyFactor.NETWORK_BOUND,
    ) -> None:
        if not 0.0 <= minimal_fraction < basic_fraction <= 1.0:
            raise FloorControlError(
                f"thresholds must satisfy 0 <= b < a <= 1, got "
                f"a={basic_fraction!r}, b={minimal_fraction!r}"
            )
        self.capacity = capacity
        self.basic_fraction = basic_fraction
        self.minimal_fraction = minimal_fraction
        self.policy_factor = policy_factor
        self._in_use = ResourceVector.zeros()
        #: External background load (e.g. cross traffic) the experiments ramp.
        self._external_load = ResourceVector.zeros()

    # ------------------------------------------------------------------
    # Thresholds
    # ------------------------------------------------------------------
    @property
    def basic_threshold(self) -> float:
        """``a`` in absolute units of the policy dimension."""
        return self.capacity.component(self.policy_factor) * self.basic_fraction

    @property
    def minimal_threshold(self) -> float:
        """``b`` in absolute units of the policy dimension."""
        return self.capacity.component(self.policy_factor) * self.minimal_fraction

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def acquire(self, demand: ResourceVector) -> None:
        """Reserve ``demand``; does not check levels (arbitration does)."""
        self._in_use = self._in_use + demand

    def release(self, demand: ResourceVector) -> None:
        """Return previously acquired resources to the pool."""
        released = self._in_use - demand
        if (
            released.network_kbps < -1e-9
            or released.cpu_share < -1e-9
            or released.memory_mb < -1e-9
        ):
            raise FloorControlError("released more resources than acquired")
        self._in_use = released

    def set_external_load(self, load: ResourceVector) -> None:
        """Background load ramped by the degradation experiments."""
        self._external_load = load

    def in_use(self) -> ResourceVector:
        """Resources currently reserved by active media."""
        return self._in_use

    def available(self) -> ResourceVector:
        """Capacity minus usage minus external load."""
        return self.capacity - self._in_use - self._external_load

    def available_scalar(self) -> float:
        """Availability in the policy dimension (the Z spec's scalar)."""
        return self.available().component(self.policy_factor)

    # ------------------------------------------------------------------
    # Classification — the heart of the a/b logic
    # ------------------------------------------------------------------
    def level(self, extra_demand: ResourceVector | None = None) -> ResourceLevel:
        """Classify availability, optionally after adding a demand.

        This is the paper's ``Resource-Available(G, F, X, DG, DM)``
        evaluation: compare the post-admission availability with the
        two thresholds.
        """
        available = self.available_scalar()
        if extra_demand is not None:
            available -= extra_demand.component(self.policy_factor)
        if available >= self.basic_threshold:
            return ResourceLevel.SUFFICIENT
        if available >= self.minimal_threshold:
            return ResourceLevel.DEGRADED
        return ResourceLevel.EXHAUSTED

    def headroom_above_minimal(self, extra_demand: ResourceVector | None = None) -> float:
        """How far above ``b`` availability would sit after admission.

        Negative values mean the admission would exhaust the station;
        the suspension planner frees media until this is non-negative.
        """
        available = self.available_scalar()
        if extra_demand is not None:
            available -= extra_demand.component(self.policy_factor)
        return available - self.minimal_threshold
