"""Per-station arbitration — the ``X : Host-Station`` parameter.

The Z spec evaluates ``Resource-Available(G, F, X, DG, DM)`` per
*host station*: a student on a congested dorm link can be in the
degraded band while the lab station is fine.  :class:`StationArbiter`
keeps one :class:`~repro.core.arbitrator.Arbitrator` per station over a
shared :class:`~repro.core.groups.GroupRegistry`, and routes each
request to the arbiter of its originating host.

Stations unknown at request time fall back to a default station, so a
deployment can start homogeneous and add per-station models as they
are measured.
"""

from __future__ import annotations

from typing import Callable

from ..errors import FloorControlError
from .arbitrator import Arbitrator
from .floor import FloorGrant, FloorRequest
from .groups import GroupRegistry
from .resources import ResourceModel, ResourceVector

__all__ = ["StationArbiter"]


class StationArbiter:
    """Routes floor requests to per-station arbitrators.

    Parameters
    ----------
    registry:
        Shared group/member state (the session has one membership,
        whatever station a member connects from).
    default_model_factory:
        Zero-argument callable producing the :class:`ResourceModel`
        for stations that were never explicitly configured.
    """

    def __init__(
        self,
        registry: GroupRegistry,
        default_model_factory: Callable[[], ResourceModel],
    ) -> None:
        self.registry = registry
        self._default_factory = default_model_factory
        self._arbiters: dict[str, Arbitrator] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure_station(self, host: str, model: ResourceModel) -> Arbitrator:
        """Install a resource model for ``host``; returns its arbiter.

        Raises
        ------
        FloorControlError
            If the station was already configured (resources are
            stateful; silently replacing one would corrupt the
            accounting of its active media).
        """
        if host in self._arbiters:
            raise FloorControlError(f"station {host!r} already configured")
        arbiter = Arbitrator(self.registry, model)
        self._arbiters[host] = arbiter
        return arbiter

    def arbiter_for(self, host: str) -> Arbitrator:
        """The station's arbiter (created from the default factory on
        first use)."""
        if host not in self._arbiters:
            self._arbiters[host] = Arbitrator(self.registry, self._default_factory())
        return self._arbiters[host]

    def stations(self) -> list[str]:
        """Hosts with an instantiated arbiter."""
        return list(self._arbiters)

    # ------------------------------------------------------------------
    # Request routing
    # ------------------------------------------------------------------
    def arbitrate(
        self,
        request: FloorRequest,
        demand: ResourceVector | None = None,
        now: float = 0.0,
    ) -> FloorGrant:
        """Arbitrate on the requester's station.

        The request's ``host`` field selects the station; an empty host
        routes to the member's registered host.
        """
        host = request.host
        if not host:
            host = self.registry.member(request.member).host
        return self.arbiter_for(host).arbitrate(request, demand=demand, now=now)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_decisions(self) -> int:
        """Decisions summed over every station."""
        return sum(arbiter.stats.decisions for arbiter in self._arbiters.values())

    def total_aborted(self) -> int:
        """Abort-Arbitrate outcomes summed over every station."""
        return sum(arbiter.stats.aborted for arbiter in self._arbiters.values())

    def recover_all(self, group_id: str) -> dict[str, list[str]]:
        """Run resource recovery on every station; returns resumed
        members per station."""
        return {
            host: arbiter.recover_resources(group_id)
            for host, arbiter in self._arbiters.items()
        }
