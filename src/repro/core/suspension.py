"""The ``Media-Suspend`` algorithm (paper, Section 3).

The Z spec picks the member set to suspend by priority::

    Media-Suspend(G, M, X, DG, DM) ≙
        ∃ MS : Member-Set •
            (∀ M' : Member • M' ∈ MS ∧ M'.Priority < M.Priority)
            ⇒ Media-Suspend(G, M', X)

i.e. when resources fall into the degraded band ``[b, a)``, the media of
members with priority *lower than the requester's* is suspended, lowest
priority first, until the station has headroom again.  Below ``b``
nothing is suspended — arbitration aborts instead.

:class:`MediaLedger` tracks which member holds which active media (and
its resource demand); :func:`plan_suspension` computes the minimal
victim set; :class:`SuspensionManager` applies and later resumes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FloorControlError
from .resources import ResourceModel, ResourceVector

__all__ = ["ActiveMedia", "MediaLedger", "plan_suspension", "SuspensionManager"]


@dataclass(frozen=True)
class ActiveMedia:
    """One media stream a member currently has open."""

    member: str
    media_name: str
    demand: ResourceVector
    priority: int


class MediaLedger:
    """Active media per group, with resource accounting hooks."""

    def __init__(self, resources: ResourceModel) -> None:
        self._resources = resources
        # group -> list of ActiveMedia
        self._active: dict[str, list[ActiveMedia]] = {}
        self._suspended: dict[str, list[ActiveMedia]] = {}

    # ------------------------------------------------------------------
    # Activation / teardown
    # ------------------------------------------------------------------
    def activate(self, group: str, media: ActiveMedia) -> None:
        """Open a media stream, reserving its resources."""
        self._resources.acquire(media.demand)
        self._active.setdefault(group, []).append(media)

    def deactivate(self, group: str, member: str, media_name: str) -> ActiveMedia:
        """Close a stream (also searches the suspended set)."""
        for pool in (self._active, self._suspended):
            entries = pool.get(group, [])
            for media in entries:
                if media.member == member and media.media_name == media_name:
                    entries.remove(media)
                    if pool is self._active:
                        self._resources.release(media.demand)
                    return media
        raise FloorControlError(
            f"no active media {media_name!r} for member {member!r} in {group!r}"
        )

    def active(self, group: str) -> list[ActiveMedia]:
        """Active media of a group (a copy)."""
        return list(self._active.get(group, []))

    def suspended(self, group: str) -> list[ActiveMedia]:
        """Suspended media of a group (a copy)."""
        return list(self._suspended.get(group, []))

    def active_for(self, group: str, member: str) -> list[ActiveMedia]:
        """Active media one member holds in a group."""
        return [m for m in self._active.get(group, []) if m.member == member]

    # ------------------------------------------------------------------
    # Suspension mechanics (used by SuspensionManager)
    # ------------------------------------------------------------------
    def _suspend(self, group: str, media: ActiveMedia) -> None:
        entries = self._active.get(group, [])
        if media not in entries:
            raise FloorControlError(
                f"media {media.media_name!r} of {media.member!r} is not active"
            )
        entries.remove(media)
        self._resources.release(media.demand)
        self._suspended.setdefault(group, []).append(media)

    def _resume(self, group: str, media: ActiveMedia) -> None:
        entries = self._suspended.get(group, [])
        if media not in entries:
            raise FloorControlError(
                f"media {media.media_name!r} of {media.member!r} is not suspended"
            )
        entries.remove(media)
        self._resources.acquire(media.demand)
        self._active.setdefault(group, []).append(media)


def plan_suspension(
    candidates: list[ActiveMedia],
    requester_priority: int,
    shortfall: float,
    component: float | None = None,
) -> list[ActiveMedia]:
    """Choose which media to suspend to recover ``shortfall`` resources.

    Implements the Z spec's victim rule: only media of members with
    ``priority < requester_priority`` are eligible, and they are taken
    lowest-priority-first (ties broken by larger demand first, so fewer
    streams are interrupted).  ``shortfall`` and the returned demands
    are measured in the policy dimension passed via each candidate's
    ``demand`` — the caller supplies a key through ``component`` (a
    pre-extracted scalar per candidate is not needed; we read the
    network dimension by default).

    Returns the victim list (possibly shorter than needed when not
    enough low-priority media exists — the caller then aborts).
    """
    if shortfall <= 0:
        return []
    eligible = [m for m in candidates if m.priority < requester_priority]
    eligible.sort(key=lambda m: (m.priority, -m.demand.network_kbps))
    victims: list[ActiveMedia] = []
    recovered = 0.0
    for media in eligible:
        if recovered >= shortfall:
            break
        victims.append(media)
        recovered += (
            media.demand.network_kbps if component is None else component
        )
    return victims


@dataclass
class SuspensionManager:
    """Applies and reverses suspension plans; keeps statistics."""

    ledger: MediaLedger
    suspensions: int = 0
    resumptions: int = 0
    history: list[tuple[str, str, str]] = field(default_factory=list)

    def suspend(self, group: str, victims: list[ActiveMedia]) -> list[str]:
        """Suspend each victim; returns the affected member names."""
        for media in victims:
            self.ledger._suspend(group, media)
            self.suspensions += 1
            self.history.append(("suspend", media.member, media.media_name))
        return [media.member for media in victims]

    def resume_where_possible(self, group: str, resources: ResourceModel) -> list[str]:
        """Resume suspended media (highest priority first) while the
        station stays at least DEGRADED-level after each resume."""
        resumed = []
        for media in sorted(
            self.ledger.suspended(group), key=lambda m: -m.priority
        ):
            if resources.headroom_above_minimal(media.demand) < 0:
                continue
            self.ledger._resume(group, media)
            self.resumptions += 1
            self.history.append(("resume", media.member, media.media_name))
            resumed.append(media.member)
        return resumed
