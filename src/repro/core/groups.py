"""Groups, members, and invitations.

The paper's Z terminology::

    Member-Set == P Member
    Group-Set  == P Group
    Group      ⊆ Member-Set
    Priority   == INTEGER

Group discussion (Section 4): "a user can create a new group to invite
others.  For example, user A wants user B receiving his invitation, he
can send an inviting message.  User B can makes a decision to accept or
not.  If yes, user B will be chosen as listen group of user A, and the
user A will be the session chair in his small group."

Direct contact "is similar to the third mode" with exactly two people.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from ..errors import FloorControlError, NotInGroupError

__all__ = [
    "Role",
    "Member",
    "Group",
    "Invitation",
    "InvitationState",
    "GroupRegistry",
]


class Role(Enum):
    """Session roles; chairs carry elevated base priority."""

    CHAIR = "chair"           # the teacher / session chair
    PARTICIPANT = "participant"  # a student


@dataclass
class Member:
    """One user of the DMPS session.

    ``priority`` is the Z spec's ``Priority == INTEGER``; participants
    default to 1 and chairs to 3, so chairs pass the ``Priority >= 2``
    guard of the controlled modes without holding a token.
    ``host`` is the station (``Host-Station`` in the Z spec) the member
    is connected from.
    """

    name: str
    role: Role = Role.PARTICIPANT
    priority: int = 0
    host: str = ""

    def __post_init__(self) -> None:
        if self.priority == 0:
            self.priority = 3 if self.role is Role.CHAIR else 1
        if self.priority < 0:
            raise FloorControlError(f"member {self.name!r}: negative priority")
        if not self.host:
            self.host = f"host-{self.name}"


@dataclass
class Group:
    """A communication group (``Group ⊆ Member-Set``).

    The main session group has ``parent=None``; subgroups created for
    group discussion / direct contact point at their parent.
    """

    group_id: str
    chair: str
    members: set[str] = field(default_factory=set)
    parent: str | None = None

    def __post_init__(self) -> None:
        self.members.add(self.chair)

    def __contains__(self, member_name: str) -> bool:
        return member_name in self.members

    def __len__(self) -> int:
        return len(self.members)


class InvitationState(Enum):
    PENDING = "pending"
    ACCEPTED = "accepted"
    DECLINED = "declined"


@dataclass
class Invitation:
    """A pending invitation into a subgroup."""

    invitation_id: int
    group_id: str
    inviter: str
    invitee: str
    state: InvitationState = InvitationState.PENDING


class GroupRegistry:
    """Membership bookkeeping for one DMPS session.

    The registry is the server-side source of truth the arbitrator
    consults for the Z spec's ``Joined-Groups(G, X)`` test.
    """

    def __init__(self) -> None:
        self._members: dict[str, Member] = {}
        self._groups: dict[str, Group] = {}
        self._invitations: dict[int, Invitation] = {}
        self._invitation_ids = itertools.count()
        self._subgroup_ids = itertools.count()

    # ------------------------------------------------------------------
    # Members
    # ------------------------------------------------------------------
    def register_member(self, member: Member) -> Member:
        """Add a member to the session roster."""
        if member.name in self._members:
            raise FloorControlError(f"member {member.name!r} already registered")
        self._members[member.name] = member
        return member

    def member(self, name: str) -> Member:
        """Look up a member by name (raises on unknown names)."""
        if name not in self._members:
            raise FloorControlError(f"unknown member {name!r}")
        return self._members[name]

    def members(self) -> list[Member]:
        """All registered members."""
        return list(self._members.values())

    # ------------------------------------------------------------------
    # Groups
    # ------------------------------------------------------------------
    def create_group(
        self, group_id: str, chair: str, parent: str | None = None
    ) -> Group:
        """Create a group chaired by ``chair``."""
        if group_id in self._groups:
            raise FloorControlError(f"group {group_id!r} already exists")
        self.member(chair)  # must be registered
        if parent is not None and parent not in self._groups:
            raise FloorControlError(f"unknown parent group {parent!r}")
        group = Group(group_id=group_id, chair=chair, parent=parent)
        self._groups[group_id] = group
        return group

    def group(self, group_id: str) -> Group:
        """Look up a group by id (raises on unknown ids)."""
        if group_id not in self._groups:
            raise FloorControlError(f"unknown group {group_id!r}")
        return self._groups[group_id]

    def groups(self) -> list[Group]:
        """All groups, main session and subgroups."""
        return list(self._groups.values())

    def join(self, group_id: str, member_name: str) -> None:
        """Add a registered member to a group."""
        self.member(member_name)
        self.group(group_id).members.add(member_name)

    def leave(self, group_id: str, member_name: str) -> None:
        """Remove a member from a group (chairs cannot leave)."""
        group = self.group(group_id)
        if member_name == group.chair:
            raise FloorControlError(
                f"chair {member_name!r} cannot leave group {group_id!r}; "
                f"dissolve it instead"
            )
        group.members.discard(member_name)

    def dissolve(self, group_id: str) -> None:
        """Remove a subgroup (and any of its pending invitations)."""
        group = self.group(group_id)
        if group.parent is None:
            raise FloorControlError("cannot dissolve the main session group")
        del self._groups[group_id]
        stale = [
            invitation_id
            for invitation_id, invitation in self._invitations.items()
            if invitation.group_id == group_id
        ]
        for invitation_id in stale:
            del self._invitations[invitation_id]

    def joined_groups(self, member_name: str) -> list[Group]:
        """The Z spec's ``Joined-Groups``: groups containing the member."""
        self.member(member_name)
        return [group for group in self._groups.values() if member_name in group]

    def require_membership(self, group_id: str, member_name: str) -> None:
        """Raise :class:`NotInGroupError` unless the member joined the
        group — the guard ``G ∈ Joined-Groups(G, X)``."""
        if member_name not in self.group(group_id):
            raise NotInGroupError(
                f"member {member_name!r} has not joined group {group_id!r}"
            )

    def subgroups_of(self, parent_id: str) -> list[Group]:
        """Subgroups whose parent is ``parent_id``."""
        return [g for g in self._groups.values() if g.parent == parent_id]

    # ------------------------------------------------------------------
    # Invitations (group discussion / direct contact setup)
    # ------------------------------------------------------------------
    def create_subgroup(self, parent_id: str, creator: str) -> Group:
        """Start a discussion subgroup; the creator becomes its chair
        ("the user A will be the session chair in his small group")."""
        self.require_membership(parent_id, creator)
        group_id = f"{parent_id}/sub{next(self._subgroup_ids)}"
        return self.create_group(group_id, chair=creator, parent=parent_id)

    def invite(self, group_id: str, inviter: str, invitee: str) -> Invitation:
        """Send an invitation; only subgroup members may invite."""
        group = self.group(group_id)
        if group.parent is None:
            raise FloorControlError("invitations apply to subgroups only")
        self.require_membership(group_id, inviter)
        self.member(invitee)
        if invitee in group:
            raise FloorControlError(
                f"member {invitee!r} is already in group {group_id!r}"
            )
        parent = self.group(group.parent)
        if invitee not in parent:
            raise NotInGroupError(
                f"invitee {invitee!r} is not in the parent session {parent.group_id!r}"
            )
        invitation = Invitation(
            invitation_id=next(self._invitation_ids),
            group_id=group_id,
            inviter=inviter,
            invitee=invitee,
        )
        self._invitations[invitation.invitation_id] = invitation
        return invitation

    def respond(self, invitation_id: int, accept: bool) -> Invitation:
        """The invitee "makes a decision to accept or not"."""
        invitation = self._invitations.get(invitation_id)
        if invitation is None:
            raise FloorControlError(f"unknown invitation {invitation_id!r}")
        if invitation.state is not InvitationState.PENDING:
            raise FloorControlError(
                f"invitation {invitation_id} already {invitation.state.value}"
            )
        if accept:
            invitation.state = InvitationState.ACCEPTED
            self.join(invitation.group_id, invitation.invitee)
        else:
            invitation.state = InvitationState.DECLINED
        return invitation

    def pending_invitations_for(self, member_name: str) -> list[Invitation]:
        """Invitations awaiting this member's decision."""
        return [
            invitation
            for invitation in self._invitations.values()
            if invitation.invitee == member_name
            and invitation.state is InvitationState.PENDING
        ]
