"""The live session server: real DMPS floor control over asyncio TCP.

:class:`SessionServer` hosts one DMPS session for external clients.
Every verb a connection sends (``request``/``release``/``leave``) is
routed through the *existing* arbitration stack — an
:class:`~repro.api.policies.ArbitratedPolicy` over the paper's
:class:`~repro.core.server.FloorControlServer` — so a served session
makes exactly the decisions a simulated one would, logs the same
transcript events, and streams them back over the wire in the
transcript's own ``to_dict`` format (:mod:`repro.serve.protocol`).

Two dispatch modes:

* **live** — frames are handled on arrival and the session clock is
  paced against the wall clock by a
  :class:`~repro.serve.clockdrive.WallClockDriver` (``speed`` virtual
  seconds per wall second), with optional idle-timeout eviction.  This
  is ``repro serve``.
* **lockstep** — the server runs barrier *rounds*: it waits until
  every admitted connection has sent one frame (or hung up), advances
  the virtual clock one ``tick``, then processes the round in sorted
  member order — frames first, then disconnect evictions, then parked
  admissions — and broadcasts the next round's ``tick`` frame.  Round
  processing is a deterministic function of what each client sent, so
  two identically seeded soaks produce byte-identical transcripts and
  metrics regardless of TCP interleaving.  This is the soak-bench and
  CI mode.

Robustness properties (the reason this layer exists — see
docs/SERVING.md):

* **Backpressure** — per-connection :class:`~repro.serve.queue.
  SendQueue` with high/low watermarks; a stalled consumer's event
  stream coalesces into state snapshots and its buffer never exceeds
  the high watermark, while other clients' grants proceed untouched.
* **Bounded memory** — the hosted session's transcript is an EventBus
  ring (``ring_capacity``); the live metrics fold sees every event
  before eviction, exactly like :class:`repro.api.Session`.
* **Graceful eviction** — a vanished or timed-out member is removed
  through :meth:`FloorControlServer.leave`, so a mid-hold disconnect
  always hands the token off (logged as ``TOKEN_PASS``) and a later
  reconnect re-admits the member with their registration intact.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..api.policies import ArbitratedPolicy, resolve_mode
from ..clock.virtual import VirtualClock
from ..errors import ServeError, WireError
from ..events.bus import EventBus
from ..events.types import EventKind, FloorEvent
from ..metrics.fold import SESSION_FOLD_KINDS, MetricsFold
from ..trace import timing as _timing
from .clockdrive import WallClockDriver
from .protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    validate_hello,
    welcome_frame,
)
from .queue import SendQueue

__all__ = ["ServeConfig", "ServeResult", "ServeStats", "SessionServer"]

_MODES = ("live", "lockstep")


@dataclass(frozen=True)
class ServeConfig:
    """Everything a :class:`SessionServer` needs, validated up front."""

    host: str = "127.0.0.1"
    port: int = 0
    policy: str = "equal_control"
    chair: str = "operator"
    mode: str = "live"
    #: Live mode: virtual seconds per wall second.
    speed: float = 1.0
    #: Lockstep mode: virtual seconds each round advances the clock.
    tick: float = 1.0
    #: Transcript ring capacity (``None`` keeps every event — only for
    #: short-lived tests; a served session should always bound it).
    ring_capacity: int | None = 4096
    #: Lockstep: rounds begin once this many members are connected
    #: (``0`` starts on the first hello).
    await_members: int = 0
    #: Live: evict a connection silent for this many wall seconds
    #: (``None`` never evicts on idleness).
    idle_timeout: float | None = None
    #: Lockstep: wall-clock bound on a round barrier; stragglers that
    #: keep a round open longer are evicted (``None`` waits forever).
    round_timeout: float | None = 30.0
    #: Send-queue watermarks (frames) — the backpressure bounds.
    queue_high: int = 256
    queue_low: int = 64
    handshake_timeout: float = 10.0
    #: Wall seconds a closing connection gets to flush its tail.
    close_grace: float = 1.0
    metrics_mode: str = "exact"

    def validate(self) -> None:
        """Raise :class:`ServeError` on an inconsistent configuration."""
        if self.mode not in _MODES:
            raise ServeError(
                f"unknown serve mode {self.mode!r}; one of {list(_MODES)}"
            )
        # Baseline policies have no FCM mode (and no membership or
        # token hand-off semantics to serve); resolve_mode raises the
        # explanatory error for them.
        try:
            resolve_mode(self.policy)
        except Exception as error:
            raise ServeError(
                f"serve hosts the four FCM mode policies; {error}"
            ) from None
        if self.speed <= 0:
            raise ServeError(f"speed must be positive, got {self.speed!r}")
        if self.tick <= 0:
            raise ServeError(f"tick must be positive, got {self.tick!r}")
        if self.ring_capacity is not None and self.ring_capacity < 1:
            raise ServeError(
                f"ring_capacity must be positive or None, got {self.ring_capacity!r}"
            )
        if self.await_members < 0:
            raise ServeError(
                f"await_members must be >= 0, got {self.await_members!r}"
            )
        if not 0 <= self.queue_low < self.queue_high:
            raise ServeError(
                f"queue watermarks need 0 <= low < high, got "
                f"low={self.queue_low!r} high={self.queue_high!r}"
            )
        for name in ("idle_timeout", "round_timeout"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ServeError(f"{name} must be positive or None, got {value!r}")


class ServeStats:
    """Plain serving counters, split by determinism.

    The *deterministic* counters depend only on what clients sent (in
    lockstep mode): admissions, voluntary leaves, evictions, inbound
    frames, rounds.  The *timing* counters depend on flush scheduling
    (outbound frames, snapshots, coalesced events) and join a persisted
    document only under the explicit ``include_timing`` opt-in — the
    same convention the fleet artifacts use.
    """

    __slots__ = (
        "connections", "peak_connections", "leaves", "evicted_disconnect",
        "evicted_timeout", "frames_in", "rounds",
        "frames_out", "snapshots", "coalesced",
    )

    def __init__(self) -> None:
        self.connections = 0
        self.peak_connections = 0
        self.leaves = 0
        self.evicted_disconnect = 0
        self.evicted_timeout = 0
        self.frames_in = 0
        self.rounds = 0
        self.frames_out = 0
        self.snapshots = 0
        self.coalesced = 0

    def deterministic(self) -> dict[str, float]:
        return {
            "connections": float(self.connections),
            "peak_connections": float(self.peak_connections),
            "leaves": float(self.leaves),
            "evicted_disconnect": float(self.evicted_disconnect),
            "evicted_timeout": float(self.evicted_timeout),
            "frames_in": float(self.frames_in),
            "rounds": float(self.rounds),
        }

    def timing(self) -> dict[str, float]:
        return {
            "frames_out": float(self.frames_out),
            "snapshots": float(self.snapshots),
            "coalesced": float(self.coalesced),
        }


@dataclass
class ServeResult:
    """What a finished (or running) server can report."""

    config: ServeConfig
    metrics: dict[str, float]
    stats_deterministic: dict[str, float]
    stats_timing: dict[str, float]
    events: list[FloorEvent] = field(default_factory=list)
    evicted_events: int = 0

    def to_metrics(self, include_timing: bool = False) -> dict[str, float]:
        """One flat metric mapping (fold schema + serving counters)."""
        metrics = {**self.metrics, **self.stats_deterministic}
        if include_timing:
            metrics.update(self.stats_timing)
        return metrics


class _Connection:
    """Server-side connection state (one per TCP peer)."""

    __slots__ = (
        "member", "reader", "writer", "queue", "watch", "pending",
        "gone", "timed_out", "left", "admitted", "closed", "last_seen",
        "reader_task", "flusher_task", "resumed",
    )

    def __init__(self, reader, writer, member: str, watch: bool,
                 queue: SendQueue) -> None:
        self.member = member
        self.reader = reader
        self.writer = writer
        self.queue = queue
        self.watch = watch
        #: Inbound frames awaiting a lockstep round boundary.
        self.pending: deque[dict[str, Any]] = deque()
        self.gone = False
        self.timed_out = False
        self.left = False
        self.admitted = False
        self.closed = False
        self.last_seen = 0.0
        self.reader_task: asyncio.Task | None = None
        self.flusher_task: asyncio.Task | None = None
        self.resumed = False


class SessionServer:
    """One served DMPS session on one asyncio TCP listener."""

    def __init__(self, config: ServeConfig) -> None:
        config.validate()
        self.config = config
        self.clock = VirtualClock()
        self.policy = ArbitratedPolicy(
            resolve_mode(config.policy),
            chair=config.chair,
            log_capacity=config.ring_capacity,
            clock=self.clock,
        )
        self.stats = ServeStats()
        #: The hosted session's transcript ring (an indexed EventBus).
        self.bus: EventBus = self.policy.server.log
        #: Streaming metrics over every floor event (subscribed before
        #: any client joins; ring eviction can drop transcript entries,
        #: never metrics).
        self.metrics = MetricsFold(mode=config.metrics_mode)
        self.bus.subscribe(self.metrics.add, kinds=SESSION_FOLD_KINDS)
        self.bus.subscribe(self._route_event)
        self._connections: dict[str, _Connection] = {}
        self._parked: list[_Connection] = []
        self._waiting: set[_Connection] = set()
        self._round = 0
        self._rounds_started = False
        self._last_progress = 0.0
        self._driver = WallClockDriver(self.clock, speed=config.speed)
        self._server: asyncio.base_events.Server | None = None
        self._sweeper: asyncio.Task | None = None
        self._reapers: set[asyncio.Task] = set()
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        if self._server is None:
            raise ServeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def live(self) -> bool:
        return self.config.mode == "live"

    async def start(self) -> None:
        """Bind the listener (and, in live mode, start the clock)."""
        if self._server is not None:
            raise ServeError("server is already started")
        self._server = await asyncio.start_server(
            self._accept,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_FRAME_BYTES,
        )
        loop = asyncio.get_running_loop()
        self._last_progress = loop.time()
        if self.live:
            self._driver.start()
            if self.config.idle_timeout is not None:
                self._sweeper = loop.create_task(
                    self._run_idle_sweep(), name="serve-idle-sweep"
                )
        elif self.config.round_timeout is not None:
            self._sweeper = loop.create_task(
                self._run_round_watchdog(), name="serve-round-watchdog"
            )

    async def stop(self) -> None:
        """Close every connection and release the listener.

        Shutdown does not rewrite session membership — the transcript
        ends where the traffic ended; still-connected members get a
        ``bye`` and their sockets closed.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        conns = list(self._connections.values()) + list(self._parked)
        for conn in conns:
            self._close_conn(conn, bye_reason="shutdown")
        readers = [
            conn.reader_task
            for conn in conns
            if conn.reader_task is not None and not conn.reader_task.done()
        ]
        if readers:
            await asyncio.gather(*readers, return_exceptions=True)
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
            self._sweeper = None
        if self._driver.running:
            await self._driver.stop()
        if self._reapers:
            await asyncio.gather(*list(self._reapers), return_exceptions=True)

    def result(self) -> ServeResult:
        """Snapshot the session's metrics, counters and transcript."""
        return ServeResult(
            config=self.config,
            metrics=self.metrics.to_metrics(),
            stats_deterministic=self.stats.deterministic(),
            stats_timing=self.stats.timing(),
            events=list(self.bus),
            evicted_events=self.bus.evicted,
        )

    # ------------------------------------------------------------------
    # Introspection used by snapshots and tests
    # ------------------------------------------------------------------
    def members(self) -> list[str]:
        """Currently connected (admitted) members, sorted."""
        return sorted(self._connections)

    def connection(self, member: str) -> _Connection:
        if member not in self._connections:
            raise ServeError(f"no connected member {member!r}")
        return self._connections[member]

    @property
    def round_index(self) -> int:
        """Lockstep rounds processed so far."""
        return self._round

    # ------------------------------------------------------------------
    # Accepting and handshaking
    # ------------------------------------------------------------------
    async def _accept(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        conn: _Connection | None = None
        try:
            line = await asyncio.wait_for(
                reader.readline(), self.config.handshake_timeout
            )
            if not line:
                raise WireError("peer closed before the handshake")
            frame = _decode_line(line)
            member = validate_hello(frame)
            if member == self.config.chair:
                raise WireError(
                    f"member name {member!r} is reserved for the chair"
                )
            if member in self._connections:
                raise WireError(f"member {member!r} is already connected")
            if any(parked.member == member for parked in self._parked):
                raise WireError(f"member {member!r} is already connecting")
            conn = _Connection(
                reader, writer, member,
                watch=bool(frame.get("watch")),
                queue=SendQueue(self.config.queue_high, self.config.queue_low),
            )
        except (WireError, asyncio.TimeoutError) as error:
            detail = (
                "handshake timed out"
                if isinstance(error, asyncio.TimeoutError) else str(error)
            )
            try:
                writer.write(encode_frame(
                    {"type": "error", "code": "handshake", "detail": detail}
                ))
                writer.close()
            except Exception:
                pass
            return
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return

        conn.last_seen = asyncio.get_running_loop().time()
        conn.reader_task = asyncio.current_task()
        if self.live:
            self._admit(conn)
            self._start_flusher(conn)
        else:
            self._parked.append(conn)
            self._start_flusher(conn)
            self._maybe_round()
        await self._read_loop(conn)

    # ------------------------------------------------------------------
    # Admission and membership
    # ------------------------------------------------------------------
    def _admit(self, conn: _Connection) -> None:
        """Join the member into the hosted session and welcome them."""
        if self.live:
            self._driver.sync()
        server = self.policy.server
        try:
            server.registry.member(conn.member)
            conn.resumed = True
        except Exception:
            conn.resumed = False
        server.join(conn.member, host=conn.member)
        conn.admitted = True
        self._connections[conn.member] = conn
        self.stats.connections += 1
        self.stats.peak_connections = max(
            self.stats.peak_connections, len(self._connections)
        )
        conn.queue.push(welcome_frame(
            conn.member,
            policy=self.config.policy,
            group=server.session_group,
            resumed=conn.resumed,
            round_index=self._round if not self.live else None,
        ))

    def _leave(self, conn: _Connection) -> None:
        """A voluntary ``leave`` verb: hand off, log, close politely."""
        if not conn.left and conn.admitted:
            conn.left = True
            self.policy.server.leave(conn.member)
            self.stats.leaves += 1
        self._close_conn(conn, bye_reason="leave")

    def _evict(self, conn: _Connection, reason: str) -> None:
        """Forcible removal: disconnect detected or a timeout fired.

        Goes through :meth:`FloorControlServer.leave`, so an evicted
        floor holder's token is handed to the next queued member (a
        ``TOKEN_PASS`` transcript entry) and the member may rejoin
        later with their registration preserved.
        """
        with _timing.maybe_span("serve.evict"):
            if not conn.left and conn.admitted:
                conn.left = True
                self.policy.server.leave(conn.member)
                if reason == "timeout":
                    self.stats.evicted_timeout += 1
                else:
                    self.stats.evicted_disconnect += 1
            self._close_conn(conn, bye_reason=reason if not conn.gone else None)

    # ------------------------------------------------------------------
    # Reading and dispatch
    # ------------------------------------------------------------------
    async def _read_loop(self, conn: _Connection) -> None:
        error_detail: str | None = None
        try:
            while not conn.closed:
                line = await conn.reader.readline()
                if not line:
                    break
                try:
                    frame = _decode_line(line)
                except WireError as error:
                    error_detail = str(error)
                    break
                self.stats.frames_in += 1
                conn.last_seen = asyncio.get_running_loop().time()
                if self.live:
                    self._dispatch(conn, frame)
                else:
                    conn.pending.append(frame)
                    self._waiting.discard(conn)
                    self._touch_progress()
                    self._maybe_round()
        except (ConnectionError, asyncio.IncompleteReadError, ValueError):
            # ValueError: a peer overran the readline limit (frame cap).
            error_detail = "frame exceeded the size cap"
        except asyncio.CancelledError:
            return
        finally:
            if not conn.closed:
                conn.gone = True
                if error_detail is not None:
                    conn.queue.push({
                        "type": "error", "code": "bad_frame",
                        "detail": error_detail,
                    })
                if self.live:
                    if conn.admitted:
                        self._evict(conn, "disconnect")
                    else:
                        self._close_conn(conn)
                else:
                    self._waiting.discard(conn)
                    if not conn.admitted:
                        self._close_conn(conn)
                    self._maybe_round()

    def _dispatch(self, conn: _Connection, frame: dict[str, Any]) -> None:
        """Apply one client verb to the hosted session."""
        with _timing.maybe_span("serve.dispatch"):
            if self.live:
                self._driver.sync()
            now = self.clock.now()
            verb = frame["type"]
            if verb == "request":
                target_member = frame.get("target_member")
                target_group = frame.get("target_group")
                self.policy.request(
                    conn.member,
                    now=now,
                    target_member=(
                        str(target_member) if target_member is not None else None
                    ),
                    target_group=(
                        str(target_group) if target_group is not None else None
                    ),
                )
            elif verb == "release":
                self.policy.release(conn.member, now=now)
            elif verb == "leave":
                self._leave(conn)
            elif verb == "ping":
                conn.queue.push({"type": "pong", "time": now})
            elif verb == "tick":
                pass  # the lockstep no-op heartbeat
            else:
                conn.queue.push({
                    "type": "error", "code": "unknown_verb",
                    "detail": f"unknown verb {verb!r}",
                })

    # ------------------------------------------------------------------
    # Lockstep rounds
    # ------------------------------------------------------------------
    def _touch_progress(self) -> None:
        self._last_progress = asyncio.get_running_loop().time()

    def _maybe_round(self) -> None:
        """Advance lockstep state as far as the barrier allows."""
        if self._stopping:
            return
        if not self._rounds_started:
            population = len(self._connections) + len(self._parked)
            if population < max(1, self.config.await_members):
                return
            self._rounds_started = True
        while (
            not self._waiting
            and (self._connections or self._parked)
            and not self._stopping
        ):
            self._process_round()

    def _process_round(self) -> None:
        """One deterministic barrier round (see module docs for order)."""
        self._round += 1
        self.clock.run_until(self._round * self.config.tick)
        # 1. Frames that arrived this round, in sorted member order.
        for member in sorted(self._connections):
            conn = self._connections.get(member)
            if conn is not None and conn.pending:
                frame = conn.pending.popleft()
                self._dispatch(conn, frame)
        # 2. Evict members whose connections vanished (sorted).
        for member in sorted(self._connections):
            conn = self._connections.get(member)
            if conn is not None and conn.gone and not conn.closed:
                conn.pending.clear()
                self._evict(conn, "timeout" if conn.timed_out else "disconnect")
        # 3. Admit parked handshakes (sorted) — including rejoins.
        parked, self._parked = self._parked, []
        for conn in sorted(parked, key=lambda c: c.member):
            if conn.gone:
                self._close_conn(conn)
            else:
                self._admit(conn)
        self.stats.rounds += 1
        # 4. Everyone still here owes a frame for the next round.
        self._waiting = set()
        next_round = self._round + 1
        for conn in self._connections.values():
            conn.queue.push_tick(next_round)
            if not conn.pending and not conn.gone:
                self._waiting.add(conn)
        self._touch_progress()

    async def _run_round_watchdog(self) -> None:
        timeout = self.config.round_timeout
        interval = max(0.05, min(1.0, timeout / 4))
        while True:
            await asyncio.sleep(interval)
            if not self._rounds_started or not self._waiting:
                continue
            loop = asyncio.get_running_loop()
            if loop.time() - self._last_progress <= timeout:
                continue
            # The barrier has been open too long: the silent members
            # are stragglers — mark them gone and let the round run.
            for conn in list(self._waiting):
                conn.gone = True
                conn.timed_out = True
            self._waiting.clear()
            self._maybe_round()

    # ------------------------------------------------------------------
    # Live-mode idle eviction
    # ------------------------------------------------------------------
    async def _run_idle_sweep(self) -> None:
        timeout = self.config.idle_timeout
        interval = max(0.05, min(1.0, timeout / 4))
        while True:
            await asyncio.sleep(interval)
            now = asyncio.get_running_loop().time()
            for conn in list(self._connections.values()):
                if now - conn.last_seen > timeout:
                    conn.timed_out = True
                    self._evict(conn, "timeout")

    # ------------------------------------------------------------------
    # Event fan-out
    # ------------------------------------------------------------------
    def _route_event(self, event: FloorEvent) -> None:
        """Push a transcript event to the connections it concerns.

        The member's own events always reach them; ``TOKEN_PASS``
        additionally reaches the recipient (they just acquired the
        floor); ``MODE_CHANGE`` is broadcast; ``watch`` connections
        receive the whole firehose.  Every push is coalescible — a
        slow consumer's backlog collapses into a snapshot.
        """
        frame = {"type": "event", "event": event.to_dict()}
        targets: dict[str, _Connection] = {}
        conn = self._connections.get(event.member)
        if conn is not None:
            targets[event.member] = conn
        if event.kind is EventKind.TOKEN_PASS:
            payload = event.payload()
            recipient = payload.to_member if payload is not None else None
            if recipient:
                conn = self._connections.get(recipient)
                if conn is not None:
                    targets[recipient] = conn
        if event.kind is EventKind.MODE_CHANGE:
            targets.update(self._connections)
        for other in self._connections.values():
            if other.watch:
                targets[other.member] = other
        for target in targets.values():
            target.queue.push(frame, coalescible=True)

    def _snapshot(self, conn: _Connection, dropped: int) -> dict[str, Any]:
        """Coalesced state for a consumer that fell behind."""
        return {
            "type": "snapshot",
            "time": self.clock.now(),
            "policy": self.config.policy,
            "speakers": sorted(self.policy.speakers()),
            "waiting": list(self.policy.waiting()),
            "members": self.members(),
            "round": self._round if not self.live else None,
            "dropped": dropped,
        }

    # ------------------------------------------------------------------
    # Flushing and teardown
    # ------------------------------------------------------------------
    def _start_flusher(self, conn: _Connection) -> None:
        conn.flusher_task = asyncio.get_running_loop().create_task(
            self._run_flusher(conn), name=f"serve-flush-{conn.member}"
        )

    async def _run_flusher(self, conn: _Connection) -> None:
        queue = conn.queue
        try:
            while True:
                await queue.wait()
                batch = queue.drain()
                frames = batch.frames
                if batch.snapshot:
                    frames.append(self._snapshot(conn, batch.dropped))
                    self.stats.snapshots += 1
                    self.stats.coalesced += batch.dropped
                if batch.tick is not None:
                    frames.append({"type": "tick", "round": batch.tick})
                if frames:
                    data = b"".join(encode_frame(frame) for frame in frames)
                    with _timing.maybe_span("serve.flush"):
                        conn.writer.write(data)
                        await conn.writer.drain()
                    self.stats.frames_out += len(frames)
                if queue.closed and not queue:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                conn.writer.close()
            except Exception:
                pass

    def _close_conn(self, conn: _Connection, bye_reason: str | None = None) -> None:
        """Tear one connection down (idempotent, never blocks)."""
        if conn.closed:
            return
        conn.closed = True
        if self._connections.get(conn.member) is conn:
            del self._connections[conn.member]
        if conn in self._parked:
            self._parked.remove(conn)
        self._waiting.discard(conn)
        if bye_reason is not None and not conn.gone:
            conn.queue.push({"type": "bye", "reason": bye_reason})
        conn.queue.close()
        if (
            conn.reader_task is not None
            and conn.reader_task is not asyncio.current_task()
        ):
            conn.reader_task.cancel()
        task = asyncio.get_running_loop().create_task(self._reap(conn))
        self._reapers.add(task)
        task.add_done_callback(self._reapers.discard)

    async def _reap(self, conn: _Connection) -> None:
        """Give the flusher a grace window, then close the transport."""
        if conn.flusher_task is not None and not conn.flusher_task.done():
            try:
                await asyncio.wait_for(
                    asyncio.shield(conn.flusher_task), self.config.close_grace
                )
            except Exception:
                conn.flusher_task.cancel()
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except Exception:
            pass


def _decode_line(line: bytes) -> dict[str, Any]:
    """Decode one wire line, enforcing the frame-size cap."""
    if len(line) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {len(line)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return decode_frame(line)
