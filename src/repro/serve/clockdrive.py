"""Pace a :class:`~repro.clock.virtual.VirtualClock` with wall time.

The simulation stack stamps every decision with virtual time; a live
server must make that virtual time *track the wall clock* so playout,
timeouts, and grant timestamps mean what a human connected to the
session expects.  :class:`WallClockDriver` is the adapter:

* :meth:`sync` advances the virtual clock to ``(loop wall elapsed) *
  speed``, running every due scheduled event — the dispatch path calls
  it before handling a frame so the decision carries a current
  timestamp;
* a background pump syncs every ``resolution`` seconds so scheduled
  virtual events (presence sweeps, timers) fire even while no traffic
  arrives.

``speed`` is virtual seconds per wall second — ``1.0`` for real time,
large values for accelerated demos and tests (the same convention as
:class:`~repro.session.runner.RealtimeBridge`, which paces scripted
*simulations*; this driver paces a *served* session).

The lockstep serving mode does not use this driver at all: there the
server advances the clock one tick per round, which is what makes soak
metrics byte-stable across runs.
"""

from __future__ import annotations

import asyncio

from ..clock.virtual import VirtualClock
from ..errors import ServeError

__all__ = ["WallClockDriver"]


class WallClockDriver:
    """Drives a virtual clock from the running asyncio loop's time."""

    def __init__(
        self,
        clock: VirtualClock,
        speed: float = 1.0,
        resolution: float = 0.05,
    ) -> None:
        if speed <= 0:
            raise ServeError(f"speed must be positive, got {speed!r}")
        if resolution <= 0:
            raise ServeError(f"resolution must be positive, got {resolution!r}")
        self.clock = clock
        self.speed = speed
        self.resolution = resolution
        self._origin: float | None = None
        self._base = clock.now()
        self._pump: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Anchor wall time zero at *now* and start the pump task."""
        if self._pump is not None:
            raise ServeError("clock driver is already running")
        loop = asyncio.get_running_loop()
        self._origin = loop.time()
        self._base = self.clock.now()
        self._pump = loop.create_task(self._run_pump(), name="serve-clock-pump")

    async def stop(self) -> None:
        """Cancel the pump (the clock keeps its current virtual time)."""
        pump, self._pump = self._pump, None
        self._origin = None
        if pump is not None:
            pump.cancel()
            try:
                await pump
            except asyncio.CancelledError:
                pass

    @property
    def running(self) -> bool:
        return self._pump is not None

    # ------------------------------------------------------------------
    # Advancing
    # ------------------------------------------------------------------
    def target(self) -> float:
        """The virtual time the wall clock says it should be."""
        if self._origin is None:
            return self.clock.now()
        elapsed = asyncio.get_running_loop().time() - self._origin
        return self._base + elapsed * self.speed

    def sync(self) -> None:
        """Run the virtual clock forward to the wall-clock target."""
        target = self.target()
        if target > self.clock.now():
            self.clock.run_until(target)

    async def _run_pump(self) -> None:
        while True:
            await asyncio.sleep(self.resolution)
            self.sync()
