"""Per-connection outbound queue with watermark backpressure.

A slow (or stalled) consumer must never block the arbitration loop and
must never grow server memory without bound.  :class:`SendQueue` gives
each connection a bounded frame buffer with classic high/low-watermark
semantics:

* event frames (``coalescible=True``) enqueue normally until the queue
  reaches ``high``; from then on the queue *coalesces* — buffered event
  frames are dropped and replaced by a single pending **snapshot**
  marker, and further event frames fold into that marker (each counted
  in :attr:`dropped`) — until a drain takes the depth back to ``low``;
* control frames (welcome/pong/error/bye) are few and never coalesce;
* lockstep ``tick`` frames supersede each other: only the latest round
  is ever buffered (:meth:`push_tick`), so a stalled lockstep client
  holds at most one tick.

The queue itself is synchronous (the event-routing path never awaits);
a per-connection flusher task awaits :meth:`wait` and writes what
:meth:`drain` returns.  The snapshot content is *not* stored here —
the server renders current state at flush time, which is exactly what
makes coalescing safe: a consumer that falls behind receives fresh
state, not a stale backlog.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..errors import ServeError

__all__ = ["DrainBatch", "SendQueue"]


@dataclass
class DrainBatch:
    """Everything one drain pass hands to the flusher."""

    frames: list[dict[str, Any]] = field(default_factory=list)
    #: Render and append a state snapshot (coalesced events pending).
    snapshot: bool = False
    #: Events folded away since the previous drain (snapshot payload).
    dropped: int = 0
    #: Latest undelivered lockstep round, if any.
    tick: int | None = None

    def __bool__(self) -> bool:
        return bool(self.frames) or self.snapshot or self.tick is not None


class SendQueue:
    """Bounded outbound frame buffer (see module docs)."""

    __slots__ = (
        "high", "low", "_frames", "_coalescing", "_snapshot_due",
        "_dropped_pending", "dropped", "_tick", "_waker", "closed",
    )

    def __init__(self, high: int = 256, low: int = 64) -> None:
        if high < 2 or not 0 <= low < high:
            raise ServeError(
                f"watermarks need 0 <= low < high (and high >= 2), "
                f"got low={low!r} high={high!r}"
            )
        self.high = high
        self.low = low
        self._frames: deque[dict[str, Any]] = deque()
        self._coalescing = False
        self._snapshot_due = False
        self._dropped_pending = 0
        #: Total event frames coalesced away over this queue's lifetime.
        self.dropped = 0
        self._tick: int | None = None
        self._waker = asyncio.Event()
        self.closed = False

    # ------------------------------------------------------------------
    # Producer side (synchronous, called from the dispatch path)
    # ------------------------------------------------------------------
    def push(self, frame: dict[str, Any], coalescible: bool = False) -> bool:
        """Enqueue a frame; returns ``False`` when it was coalesced.

        ``coalescible`` marks frames that a state snapshot can stand in
        for (event frames); everything else is control traffic and is
        buffered unconditionally.
        """
        if self.closed:
            return False
        if coalescible and self._coalescing:
            self._snapshot_due = True
            self._dropped_pending += 1
            self.dropped += 1
            self._waker.set()
            return False
        self._frames.append(frame)
        if coalescible and len(self._frames) >= self.high:
            self._start_coalescing()
        self._waker.set()
        return True

    def push_tick(self, round_index: int) -> None:
        """Buffer a lockstep tick, superseding any undelivered one."""
        if self.closed:
            return
        self._tick = round_index
        self._waker.set()

    def _start_coalescing(self) -> None:
        kept: deque[dict[str, Any]] = deque()
        removed = 0
        for frame in self._frames:
            if frame.get("type") == "event":
                removed += 1
            else:
                kept.append(frame)
        self._frames = kept
        self._coalescing = True
        self._snapshot_due = True
        self._dropped_pending += removed
        self.dropped += removed

    # ------------------------------------------------------------------
    # Consumer side (the flusher task)
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Buffered frames right now (excludes the tick slot)."""
        return len(self._frames)

    @property
    def coalescing(self) -> bool:
        """Whether the queue is currently above its watermark regime."""
        return self._coalescing

    async def wait(self) -> None:
        """Block until the queue holds something (or is closed)."""
        while not self and not self.closed:
            self._waker.clear()
            await self._waker.wait()

    def drain(self) -> DrainBatch:
        """Take everything buffered; resumes normal buffering once the
        depth is back under the low watermark (it is zero after a
        drain, so one full flush always ends a coalescing episode)."""
        batch = DrainBatch(
            frames=list(self._frames),
            snapshot=self._snapshot_due,
            dropped=self._dropped_pending,
            tick=self._tick,
        )
        self._frames.clear()
        self._snapshot_due = False
        self._dropped_pending = 0
        self._tick = None
        if self._coalescing and len(self._frames) <= self.low:
            self._coalescing = False
        return batch

    def close(self) -> None:
        """Mark the queue dead and wake any waiting flusher."""
        self.closed = True
        self._waker.set()

    def __bool__(self) -> bool:
        return bool(self._frames) or self._snapshot_due or self._tick is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SendQueue(depth={len(self._frames)}, high={self.high}, "
            f"coalescing={self._coalescing}, dropped={self.dropped})"
        )
