"""Deterministic many-client soak over one :class:`SessionServer`.

The soak is the serving layer's load harness *and* its reproducibility
proof: it spins up a lockstep server plus ``clients`` concurrent TCP
connections in one process, drives a seeded request/release/disconnect
workload for ``rounds`` barrier rounds, and folds the session's grant
latency and fairness through :class:`~repro.metrics.MetricsFold` —
the same streaming kernel every other artifact uses.  Because lockstep
rounds are a deterministic function of what each client sent, two runs
with the same :class:`SoakSpec` produce **byte-identical** metrics and
transcripts; CI pins exactly that.

Workload shape (all derived from the spec seed, per member, via
:func:`~repro.experiments.spec.derive_seed`):

* the first ``disconnects`` members are *disconnectors*: they request
  every round, never release, and hard-close their socket at staggered
  rounds — the first granted one always vanishes **mid-hold**, forcing
  the server's eviction hand-off (``TOKEN_PASS``) again and again;
* every other member releases after ``hold_rounds`` rounds of holding
  and otherwise requests with probability ``request_prob`` per round;
* at the final round everyone still connected sends a polite ``leave``.
"""

from __future__ import annotations

import asyncio
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from random import Random

from ..errors import ServeError
from ..events.types import EventKind
from ..experiments.spec import derive_seed
from ..trace import timing as _timing
from .client import ServeClient
from .protocol import event_from_frame
from .server import ServeConfig, ServeResult, SessionServer

__all__ = ["SoakSpec", "SoakResult", "run_soak", "run_soak_sync"]


@dataclass(frozen=True)
class SoakSpec:
    """One soak scenario — everything that determines its transcript."""

    clients: int = 64
    rounds: int = 12
    #: Per-round request probability for non-holding normal members.
    request_prob: float = 0.3
    #: Rounds a normal member keeps the floor before releasing.
    hold_rounds: int = 2
    #: Scripted hard-disconnect members (eviction/hand-off pressure).
    disconnects: int = 4
    #: Round the first disconnector vanishes at; +3 per later one.
    disconnect_round: int = 3
    policy: str = "equal_control"
    tick: float = 1.0
    ring_capacity: int | None = 4096
    seed: int = 0
    queue_high: int = 256
    queue_low: int = 64
    #: Wall-clock guard per client await (never shapes the transcript).
    client_timeout: float = 60.0

    def validate(self) -> None:
        if self.clients < 1:
            raise ServeError(f"clients must be >= 1, got {self.clients!r}")
        if self.rounds < 2:
            raise ServeError(f"rounds must be >= 2, got {self.rounds!r}")
        if not 0.0 <= self.request_prob <= 1.0:
            raise ServeError(
                f"request_prob must be in [0, 1], got {self.request_prob!r}"
            )
        if self.hold_rounds < 1:
            raise ServeError(
                f"hold_rounds must be >= 1, got {self.hold_rounds!r}"
            )
        if not 0 <= self.disconnects <= self.clients:
            raise ServeError(
                f"disconnects must be in [0, clients], got {self.disconnects!r}"
            )
        if self.disconnect_round < 1:
            raise ServeError(
                f"disconnect_round must be >= 1, got {self.disconnect_round!r}"
            )
        self.to_config().validate()

    def member_names(self) -> list[str]:
        """Zero-padded names, so sorted order == member index order."""
        return [f"m{i:04d}" for i in range(self.clients)]

    def disconnect_rounds(self) -> dict[str, int]:
        """Member → the round it hard-closes at (disconnectors only).

        Staggered three rounds apart and clamped below the final round
        so every scripted disconnect happens while the soak runs.
        """
        names = self.member_names()
        return {
            names[i]: min(self.disconnect_round + 3 * i, self.rounds - 1)
            for i in range(self.disconnects)
        }

    def to_config(self) -> ServeConfig:
        return ServeConfig(
            mode="lockstep",
            policy=self.policy,
            tick=self.tick,
            ring_capacity=self.ring_capacity,
            await_members=self.clients,
            queue_high=self.queue_high,
            queue_low=self.queue_low,
            round_timeout=self.client_timeout,
        )


@dataclass
class SoakResult:
    """A finished soak: the spec, the server's result, wall timing."""

    spec: SoakSpec
    serve: ServeResult
    wall_seconds: float
    profile: dict[str, dict[str, float]] = field(default_factory=dict)

    def to_metrics(self, include_timing: bool = False) -> dict[str, float]:
        metrics = self.serve.to_metrics(include_timing=include_timing)
        if include_timing:
            metrics["wall_seconds"] = self.wall_seconds
        return metrics

    def render(self) -> str:
        """Human summary (wall timing included — never persisted)."""
        m = self.to_metrics()
        spec = self.spec
        rate = (
            m["frames_in"] / self.wall_seconds if self.wall_seconds else 0.0
        )
        return "\n".join([
            f"serve soak: {spec.clients} clients x {spec.rounds} rounds "
            f"({spec.policy}, seed {spec.seed})",
            f"  grants: p50 {m['grant_p50']:.1f}  p95 {m['grant_p95']:.1f}  "
            f"mean {m['grant_mean']:.2f} (virtual s in queue)",
            f"  fairness (Jain): {m['fairness']:.4f}  "
            f"served {int(m['served'])} / requests {int(m['requests'])}",
            f"  evictions: {int(m['evicted_disconnect'])} disconnect, "
            f"{int(m['evicted_timeout'])} timeout; "
            f"{int(m['leaves'])} polite leaves",
            f"  transcript: {len(self.serve.events)} events kept, "
            f"{self.serve.evicted_events} evicted (ring mode)",
            f"  wall: {self.wall_seconds:.2f}s "
            f"({int(m['frames_in'])} frames in, {rate:,.0f}/s)",
        ])


async def _run_client(
    spec: SoakSpec,
    port: int,
    name: str,
    disconnect_at: int | None,
) -> None:
    """One soak member's scripted life (see module docs)."""
    rng = Random(derive_seed(spec.seed, "serve", {"member": name}))
    client = await ServeClient.connect(
        "127.0.0.1", port, name, timeout=spec.client_timeout
    )
    holding = False
    held = 0
    try:
        while True:
            frame = await client.recv(timeout=spec.client_timeout)
            kind = frame["type"]
            if kind == "event":
                event = event_from_frame(frame)
                if event.kind is EventKind.GRANT and event.member == name:
                    holding, held = True, 0
                elif event.kind is EventKind.TOKEN_PASS:
                    payload = event.payload()
                    if payload is not None and payload.to_member == name:
                        holding, held = True, 0
                    elif event.member == name:
                        holding = False
            elif kind == "tick":
                round_index = frame["round"]
                if disconnect_at is not None and round_index >= disconnect_at:
                    return  # hard close — the eviction path
                if round_index >= spec.rounds:
                    await client.leave()
                    continue  # wait for the bye
                if holding:
                    held += 1
                    if held >= spec.hold_rounds and disconnect_at is None:
                        holding = False
                        await client.release()
                    else:
                        await client.tick()
                elif disconnect_at is not None:
                    await client.request()
                elif rng.random() < spec.request_prob:
                    await client.request()
                else:
                    await client.tick()
            elif kind == "bye":
                return
    finally:
        await client.close()


async def run_soak(
    spec: SoakSpec, profile: bool = False
) -> SoakResult:
    """Run one soak scenario to completion in the current loop."""
    spec.validate()
    profiler = _timing.Profiler() if profile else None
    context = (
        _timing.activate(profiler) if profiler is not None else nullcontext()
    )
    started = time.perf_counter()
    server = SessionServer(spec.to_config())
    disconnect_rounds = spec.disconnect_rounds()
    with context:
        try:
            await server.start()
            port = server.port
            tasks = [
                asyncio.ensure_future(
                    _run_client(spec, port, name, disconnect_rounds.get(name))
                )
                for name in spec.member_names()
            ]
            done, pending = await asyncio.wait(
                tasks, timeout=spec.client_timeout * 4
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
                raise ServeError(
                    f"soak stalled: {len(pending)} client(s) never finished"
                )
            for task in done:
                error = task.exception()
                if error is not None:
                    raise error
        finally:
            await server.stop()
    result = server.result()
    wall = time.perf_counter() - started
    aggregates = profiler.aggregates() if profiler is not None else {}
    return SoakResult(
        spec=spec, serve=result, wall_seconds=wall, profile=aggregates
    )


def run_soak_sync(spec: SoakSpec, profile: bool = False) -> SoakResult:
    """:func:`run_soak` from synchronous code (its own event loop)."""
    return asyncio.run(run_soak(spec, profile=profile))
