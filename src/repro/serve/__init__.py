"""Live serving: real DMPS sessions over asyncio TCP.

Where the rest of the stack *simulates* distributed multimedia
presentation sessions, this package *hosts* one for external clients:

- :mod:`repro.serve.protocol` — the wire format: newline-delimited
  JSON frames carrying the transcript's own ``FloorEvent.to_dict``
  records, plus a versioned handshake;
- :mod:`repro.serve.server` — :class:`SessionServer`, routing client
  verbs through the existing :class:`~repro.api.policies.
  ArbitratedPolicy` arbitration, with watermark backpressure, ring
  transcripts, and eviction hand-off on disconnect;
- :mod:`repro.serve.queue` — the per-connection bounded
  :class:`SendQueue` with snapshot coalescing;
- :mod:`repro.serve.clockdrive` — :class:`WallClockDriver`, pacing the
  virtual session clock against the wall clock in live mode;
- :mod:`repro.serve.client` — :class:`ServeClient`, the pure-Python
  client the examples, tests, and soak all use;
- :mod:`repro.serve.soak` — the deterministic many-client lockstep
  soak behind ``repro serve --smoke`` and ``BENCH_serve.json``;
- :mod:`repro.serve.persist` — that artifact's writer (shared
  ``repro-dmps/bench`` schema).
"""

from .client import ServeClient
from .clockdrive import WallClockDriver
from .persist import soak_result_to_sweep, write_soak_json
from .protocol import (
    CLIENT_VERBS,
    MAX_FRAME_BYTES,
    PROTOCOL,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    event_frame,
    event_from_frame,
    hello_frame,
    validate_hello,
    welcome_frame,
)
from .queue import DrainBatch, SendQueue
from .server import ServeConfig, ServeResult, ServeStats, SessionServer
from .soak import SoakResult, SoakSpec, run_soak, run_soak_sync

__all__ = [
    "CLIENT_VERBS",
    "MAX_FRAME_BYTES",
    "PROTOCOL",
    "PROTOCOL_VERSION",
    "DrainBatch",
    "SendQueue",
    "ServeClient",
    "ServeConfig",
    "ServeResult",
    "ServeStats",
    "SessionServer",
    "SoakResult",
    "SoakSpec",
    "WallClockDriver",
    "decode_frame",
    "encode_frame",
    "event_frame",
    "event_from_frame",
    "hello_frame",
    "run_soak",
    "run_soak_sync",
    "soak_result_to_sweep",
    "validate_hello",
    "welcome_frame",
    "write_soak_json",
]
