"""Persist a soak run as a canonical ``BENCH_serve`` document.

Mirrors :mod:`repro.fabric.persist`: the soak becomes a synthetic
one-cell sweep under the shared ``repro-dmps/bench`` schema, so every
artifact-reading tool (``repro bench``, the diff/check machinery, CI
byte-stability pins) consumes serving benchmarks with zero new code.
The deterministic metric set (grant latency percentiles, Jain
fairness, eviction and round counters) is written by default; wall
timing and flush counters join only under ``include_timing`` — the
same opt-in convention the fleet uses, which is what keeps two
identically seeded soak documents byte-identical.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from ..experiments.runner import CellResult, SweepResult
from ..experiments.spec import Cell, SweepSpec
from ..experiments.persist import write_json
from .soak import SoakResult

__all__ = ["soak_result_to_sweep", "write_soak_json"]


def _spec_params(result: SoakResult) -> dict[str, Any]:
    spec = result.spec
    return {
        "clients": spec.clients,
        "rounds": spec.rounds,
        "request_prob": spec.request_prob,
        "hold_rounds": spec.hold_rounds,
        "disconnects": spec.disconnects,
        "disconnect_round": spec.disconnect_round,
        "policy": spec.policy,
        "tick": spec.tick,
        "ring_capacity": spec.ring_capacity,
        "queue_high": spec.queue_high,
        "queue_low": spec.queue_low,
    }


def soak_result_to_sweep(
    result: SoakResult,
    name: str = "serve",
    include_timing: bool = False,
) -> SweepResult:
    """Wrap a soak as a synthetic one-cell sweep result.

    The cell's recorded seed is the soak's actual seed, so the document
    states exactly what reproduces it.
    """
    params = _spec_params(result)
    spec = SweepSpec(
        name=name,
        axes=(),
        base=params,
        runner="serve",
        root_seed=result.spec.seed,
    )
    metrics = result.to_metrics(include_timing=include_timing)
    cell = Cell(index=0, cell_id="serve", params=params, seed=result.spec.seed)
    return SweepResult(spec=spec, results=(CellResult(cell=cell, metrics=metrics),))


def write_soak_json(
    result: SoakResult,
    path: str | Path,
    name: str = "serve",
    include_timing: bool = False,
) -> Path:
    """Write the canonical ``BENCH_serve`` JSON; returns the path."""
    return write_json(soak_result_to_sweep(result, name, include_timing), path)
