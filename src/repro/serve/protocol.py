"""The serve wire format: newline-delimited JSON frames + handshake.

One frame is one JSON object on one line.  Events cross the wire as
the *exact* ``FloorEvent.to_dict`` mapping that transcripts persist
(:mod:`repro.events.transcript`), so the serving surface can never
drift from the replay/record format — a client that tails a live
session and a tool that reads a saved transcript parse the same
records.  Everything else on the wire is a small closed set of control
frames (``hello``/``welcome``, ``request``/``release``/``leave``,
``tick``, ``snapshot``, ``ping``/``pong``, ``error``, ``bye``).

The handshake is versioned: the first frame a client sends must be a
``hello`` naming :data:`PROTOCOL` and :data:`PROTOCOL_VERSION`; the
server answers ``welcome`` (echoing both) or ``error`` + close.  A
version bump is therefore always an explicit, observable rejection —
never silent misparsing.

Frame bytes are canonical (sorted keys, compact separators), so the
same frame always encodes to the same bytes — the soak benchmark's
byte-stability pin rests on this.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ..errors import WireError
from ..events.types import FloorEvent

__all__ = [
    "CLIENT_VERBS",
    "MAX_FRAME_BYTES",
    "PROTOCOL",
    "PROTOCOL_VERSION",
    "decode_frame",
    "encode_frame",
    "event_frame",
    "event_from_frame",
    "hello_frame",
    "validate_hello",
    "welcome_frame",
]

#: Wire-protocol family tag; a different family never handshakes.
PROTOCOL = "repro-dmps/serve"
#: Bump on any incompatible frame-layout change.
PROTOCOL_VERSION = 1

#: Hard per-frame size cap (readline limit): a peer that streams an
#: unterminated line cannot grow the reader's buffer without bound.
MAX_FRAME_BYTES = 64 * 1024

#: The command verbs a connected client may send after the handshake.
CLIENT_VERBS = frozenset(
    {"request", "release", "leave", "tick", "ping"}
)


def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """Serialize one frame to its canonical wire line (with ``\\n``).

    Raises
    ------
    WireError
        When the frame is not JSON-serializable or too large.
    """
    try:
        text = json.dumps(
            frame, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as error:
        raise WireError(f"frame is not JSON-serializable: {error}") from None
    data = text.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return data


def decode_frame(line: bytes | str) -> dict[str, Any]:
    """Parse one wire line back into a frame dict.

    Raises
    ------
    WireError
        On malformed JSON, a non-object frame, or a missing/non-string
        ``type`` field.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise WireError(f"frame is not valid UTF-8: {error}") from None
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as error:
        raise WireError(f"frame is not valid JSON: {error}") from None
    if not isinstance(frame, dict):
        raise WireError(f"frame must be a JSON object, got {type(frame).__name__}")
    kind = frame.get("type")
    if not isinstance(kind, str) or not kind:
        raise WireError(f"frame has no string 'type' field: {frame!r}")
    return frame


# ----------------------------------------------------------------------
# Frame builders
# ----------------------------------------------------------------------
def hello_frame(member: str, watch: bool = False) -> dict[str, Any]:
    """The client's opening handshake frame."""
    return {
        "type": "hello",
        "proto": PROTOCOL,
        "v": PROTOCOL_VERSION,
        "member": member,
        "watch": bool(watch),
    }


def welcome_frame(
    member: str,
    policy: str,
    group: str,
    resumed: bool,
    round_index: int | None,
) -> dict[str, Any]:
    """The server's handshake acceptance (``round`` is lockstep-only)."""
    return {
        "type": "welcome",
        "proto": PROTOCOL,
        "v": PROTOCOL_VERSION,
        "member": member,
        "policy": policy,
        "group": group,
        "resumed": bool(resumed),
        "round": round_index,
    }


def event_frame(event: FloorEvent) -> dict[str, Any]:
    """Wrap a transcript event for the wire (the ``to_dict`` mapping)."""
    return {"type": "event", "event": event.to_dict()}


def event_from_frame(frame: Mapping[str, Any]) -> FloorEvent:
    """Restore the :class:`FloorEvent` an ``event`` frame carries.

    Raises
    ------
    WireError
        When the frame is not an event frame or its record is invalid.
    """
    if frame.get("type") != "event":
        raise WireError(f"not an event frame: {frame.get('type')!r}")
    record = frame.get("event")
    try:
        return FloorEvent.from_dict(record)
    except Exception as error:
        raise WireError(f"bad event record on the wire: {error}") from None


def validate_hello(frame: Mapping[str, Any]) -> str:
    """Check a decoded handshake frame; returns the member name.

    Raises
    ------
    WireError
        With a message naming what was wrong (sent back to the peer in
        an ``error`` frame before the connection closes).
    """
    if frame.get("type") != "hello":
        raise WireError(
            f"handshake must open with a hello frame, got {frame.get('type')!r}"
        )
    if frame.get("proto") != PROTOCOL:
        raise WireError(
            f"protocol mismatch: peer speaks {frame.get('proto')!r}, "
            f"server speaks {PROTOCOL!r}"
        )
    if frame.get("v") != PROTOCOL_VERSION:
        raise WireError(
            f"version mismatch: peer speaks v{frame.get('v')!r}, "
            f"server speaks v{PROTOCOL_VERSION}"
        )
    member = frame.get("member")
    if not isinstance(member, str) or not member:
        raise WireError(f"hello needs a non-empty member name, got {member!r}")
    return member
