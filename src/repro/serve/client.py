"""Pure-Python asyncio client for a served DMPS session.

:class:`ServeClient` speaks the :mod:`repro.serve.protocol` wire
format: it handshakes, sends command verbs, and exposes the inbound
frame stream (transcript events, lockstep ticks, snapshots) through
:meth:`recv` plus small conveniences (:meth:`wait_granted`,
:meth:`wait_for_kind`).  The soak benchmark drives hundreds of these
against one server process; the examples and docs drive one.

The client never interprets arbitration — it forwards verbs and parses
what comes back.  Event frames decode to real
:class:`~repro.events.types.FloorEvent` objects via
:func:`~repro.serve.protocol.event_from_frame`, so client-side code
works with the same transcript types the rest of the stack uses.
"""

from __future__ import annotations

import asyncio
from typing import Any

from ..errors import ServeError, WireError
from ..events.types import EventKind, FloorEvent
from .protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    event_from_frame,
    hello_frame,
)

__all__ = ["ServeClient"]

#: Sentinel queued when the server closes the connection.
_CLOSED = {"type": "_closed"}


class ServeClient:
    """One connected member (or watcher) of a served session."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        member: str,
        welcome: dict[str, Any],
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.member = member
        #: The server's handshake acceptance (policy, group, resumed…).
        self.welcome = welcome
        self._frames: asyncio.Queue[dict[str, Any]] = asyncio.Queue()
        self._pump: asyncio.Task | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Connecting
    # ------------------------------------------------------------------
    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        member: str,
        watch: bool = False,
        timeout: float = 10.0,
    ) -> "ServeClient":
        """Open a connection and complete the handshake.

        Raises :class:`ServeError` when the server rejects the hello
        (protocol mismatch, duplicate member, reserved name…).
        """
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_FRAME_BYTES
        )
        try:
            writer.write(encode_frame(hello_frame(member, watch=watch)))
            await writer.drain()
            early: list[dict[str, Any]] = []
            welcome: dict[str, Any] | None = None
            while welcome is None:
                line = await asyncio.wait_for(reader.readline(), timeout)
                if not line:
                    raise ServeError("server closed during the handshake")
                frame = decode_frame(line)
                if frame["type"] == "welcome":
                    welcome = frame
                elif frame["type"] == "error":
                    raise ServeError(
                        f"handshake rejected: {frame.get('detail')}"
                    )
                else:
                    # The member's own JOIN event can race the welcome;
                    # keep anything early for the frame stream.
                    early.append(frame)
        except BaseException:
            writer.close()
            raise
        client = cls(reader, writer, member, welcome)
        for frame in early:
            client._frames.put_nowait(frame)
        client._pump = asyncio.get_running_loop().create_task(
            client._run_pump(), name=f"serve-client-{member}"
        )
        return client

    async def _run_pump(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    frame = decode_frame(line)
                except WireError:
                    break
                self._frames.put_nowait(frame)
        except (ConnectionError, asyncio.IncompleteReadError, ValueError):
            pass
        finally:
            self._frames.put_nowait(_CLOSED)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    async def recv(self, timeout: float | None = None) -> dict[str, Any]:
        """The next inbound frame; raises :class:`ServeError` on close."""
        if timeout is None:
            frame = await self._frames.get()
        else:
            frame = await asyncio.wait_for(self._frames.get(), timeout)
        if frame is _CLOSED:
            self._frames.put_nowait(_CLOSED)  # keep raising for callers
            raise ServeError("connection closed by the server")
        return frame

    async def wait_for_kind(
        self, *kinds: EventKind, timeout: float = 10.0
    ) -> FloorEvent:
        """Read frames until an event of one of ``kinds`` arrives."""
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise ServeError(
                    f"timed out waiting for {[k.value for k in kinds]}"
                )
            frame = await self.recv(timeout=remaining)
            if frame["type"] == "event":
                event = event_from_frame(frame)
                if event.kind in kinds:
                    return event

    async def wait_granted(self, timeout: float = 10.0) -> FloorEvent:
        """Block until this member holds the floor.

        Matches a ``GRANT`` for this member or a ``TOKEN_PASS`` naming
        it as the recipient.
        """
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise ServeError(f"{self.member!r} was not granted in time")
            frame = await self.recv(timeout=remaining)
            if frame["type"] != "event":
                continue
            event = event_from_frame(frame)
            if event.kind is EventKind.GRANT and event.member == self.member:
                return event
            if event.kind is EventKind.TOKEN_PASS:
                payload = event.payload()
                if payload is not None and payload.to_member == self.member:
                    return event

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    async def _send(self, frame: dict[str, Any]) -> None:
        if self._closed:
            raise ServeError("client is closed")
        self._writer.write(encode_frame(frame))
        await self._writer.drain()

    async def request(
        self,
        target_member: str | None = None,
        target_group: str | None = None,
    ) -> None:
        """Ask for the floor (targets matter in the subgroup modes)."""
        frame: dict[str, Any] = {"type": "request"}
        if target_member is not None:
            frame["target_member"] = target_member
        if target_group is not None:
            frame["target_group"] = target_group
        await self._send(frame)

    async def release(self) -> None:
        await self._send({"type": "release"})

    async def leave(self) -> None:
        """Leave the session politely (the server hands off and logs)."""
        await self._send({"type": "leave"})

    async def tick(self) -> None:
        """The lockstep no-op: 'I have nothing to do this round'."""
        await self._send({"type": "tick"})

    async def ping(self) -> None:
        await self._send({"type": "ping"})

    # ------------------------------------------------------------------
    # Closing
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Drop the connection (no ``leave`` — the server evicts)."""
        if self._closed:
            return
        self._closed = True
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except asyncio.CancelledError:
                pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except Exception:
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()
