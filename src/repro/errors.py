"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PetriNetError(ReproError):
    """Structural or semantic error in a Petri net."""


class DuplicateNodeError(PetriNetError):
    """A place or transition with the same name already exists."""


class UnknownNodeError(PetriNetError):
    """A referenced place or transition does not exist in the net."""


class NotEnabledError(PetriNetError):
    """Attempted to fire a transition that is not enabled."""


class TemporalError(ReproError):
    """Error in a temporal specification or schedule."""


class InconsistentSpecError(TemporalError):
    """A presentation specification has contradictory constraints."""


class ScheduleError(TemporalError):
    """A schedule could not be computed or verified."""


class MediaError(ReproError):
    """Error in the media-object substrate."""


class ChannelError(MediaError):
    """A QoS channel could not be established or was violated."""


class NetworkError(ReproError):
    """Error in the simulated network substrate."""

class UnknownHostError(NetworkError):
    """A referenced host does not exist in the network."""


class ClockError(ReproError):
    """Error in the clock substrate."""


class SessionError(ReproError):
    """Error in the DMPS session layer."""


class EventBusError(ReproError):
    """Error in the event subsystem (:mod:`repro.events`)."""


class TranscriptError(EventBusError):
    """A saved transcript could not be read or failed validation."""


class CheckError(ReproError):
    """Error in the property-checking subsystem (:mod:`repro.check`)."""


class ServeError(ReproError):
    """Error in the live serving layer (:mod:`repro.serve`)."""


class WireError(ServeError):
    """A wire frame could not be encoded, decoded, or validated."""


class FloorControlError(ReproError):
    """Error in the floor control mechanism."""


class NotInGroupError(FloorControlError):
    """The member (or host) has not joined the group it addressed."""


class ArbitrationAborted(FloorControlError):
    """Arbitration aborted because resources fell below the minimal
    threshold ``b`` (paper, Section 3: ``Abort-Arbitrate``)."""


class FloorDeniedError(FloorControlError):
    """A floor request was denied by the arbiter."""
