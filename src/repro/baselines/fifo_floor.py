"""FIFO floor control baseline (ablation A4).

A deliberately naive arbiter: one global FIFO queue, no modes, no
member priorities, no resource awareness.  Whoever asks first speaks;
everyone else waits.  Comparing it against
:class:`~repro.core.arbitrator.Arbitrator` shows what the paper's
mode/priority/resource machinery buys:

* free-access workloads serialize needlessly behind the queue;
* the chair (teacher) waits behind students;
* nothing is suspended under resource pressure — the station just
  degrades for everyone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FloorControlError

__all__ = ["FIFOFloorControl"]


@dataclass
class FIFOFloorControl:
    """Single-queue exclusive floor."""

    holder: str | None = None
    queue: list[str] = field(default_factory=list)
    grants: int = 0
    waits: int = 0
    #: (member, requested_at, granted_at) for latency accounting.
    grant_log: list[tuple[str, float, float]] = field(default_factory=list)
    _pending_since: dict[str, float] = field(default_factory=dict)

    def request(self, member: str, now: float = 0.0) -> bool:
        """Ask for the floor; returns ``True`` when granted immediately."""
        if self.holder == member:
            return True
        if self.holder is None:
            self.holder = member
            self.grants += 1
            self.grant_log.append((member, now, now))
            return True
        if member not in self.queue:
            self.queue.append(member)
            self._pending_since[member] = now
            self.waits += 1
        return False

    def release(self, member: str, now: float = 0.0) -> str | None:
        """Release the floor; the head of the queue takes over."""
        if self.holder != member:
            raise FloorControlError(f"{member!r} does not hold the floor")
        if self.queue:
            self.holder = self.queue.pop(0)
            self.grants += 1
            requested = self._pending_since.pop(self.holder, now)
            self.grant_log.append((self.holder, requested, now))
        else:
            self.holder = None
        return self.holder

    def speakers(self) -> set[str]:
        """The set of members currently allowed to deliver."""
        return {self.holder} if self.holder else set()

    def mean_grant_latency(self) -> float:
        """Average request-to-grant wait over the run."""
        if not self.grant_log:
            return 0.0
        return sum(granted - requested for __, requested, granted in self.grant_log) / len(
            self.grant_log
        )
