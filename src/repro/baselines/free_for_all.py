"""No-floor-control baseline.

Every participant always speaks — the situation the paper's floor
control exists to prevent.  The baseline measures the damage:

* **collisions**: posts from different authors within a small window,
  which on a shared whiteboard garble each other;
* **overload**: instantaneous bandwidth demand versus the station
  capacity when everyone streams at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FreeForAll"]


@dataclass
class FreeForAll:
    """Counts the chaos of an uncontrolled session.

    Parameters
    ----------
    collision_window:
        Posts from distinct authors closer than this many seconds are
        counted as colliding.
    """

    collision_window: float = 0.25
    posts: list[tuple[float, str]] = field(default_factory=list)
    collisions: int = 0

    def post(self, author: str, now: float) -> None:
        """Record an uncontrolled post and count collisions."""
        for time, other in reversed(self.posts):
            if now - time > self.collision_window:
                break
            if other != author:
                self.collisions += 1
                break
        self.posts.append((now, author))

    def speakers(self) -> set[str]:
        """Everyone who ever posted (no floor control)."""
        return {author for __, author in self.posts}

    def collision_rate(self) -> float:
        """Fraction of posts that collided with another author's."""
        if not self.posts:
            return 0.0
        return self.collisions / len(self.posts)

    def peak_demand_kbps(self, per_speaker_kbps: float, window: float = 1.0) -> float:
        """Worst instantaneous bandwidth demand if every author posting
        within ``window`` streamed simultaneously."""
        best = 0
        times = [time for time, __ in self.posts]
        for index, start in enumerate(times):
            concurrent = {
                author
                for time, author in self.posts
                if start <= time < start + window
            }
            best = max(best, len(concurrent))
        return best * per_speaker_kbps
