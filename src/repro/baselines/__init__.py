"""Baselines the paper's mechanisms are compared against.

* :class:`FIFOFloorControl` — single-queue floor control without
  modes, priorities, or resource awareness (ablation A4).
* :class:`FreeForAll` — no floor control at all: measures collisions
  and overload (motivation for the mechanism).
* OCPN-without-global-clock is exercised through
  ``DOCPNSystem(use_global_clock=False)`` (ablation A1) rather than a
  separate class.
"""

from .fifo_floor import FIFOFloorControl
from .free_for_all import FreeForAll

__all__ = ["FIFOFloorControl", "FreeForAll"]
