"""Connection lights (Figure 3).

"If some of the client side disconnected, the light will be red;
teacher can move the mouse to this red light to check the problem."

The server expects a heartbeat from every client; a client whose last
heartbeat is older than ``timeout`` shows a red light.  The monitor
records every colour transition so experiment E6 can measure detection
latency (disconnect instant → light turning red).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..clock.virtual import VirtualClock
from ..errors import SessionError

__all__ = ["Light", "LightTransition", "PresenceMonitor"]


class Light(Enum):
    GREEN = "green"
    RED = "red"


@dataclass(frozen=True)
class LightTransition:
    """One recorded colour change."""

    member: str
    time: float
    light: Light


class PresenceMonitor:
    """Server-side heartbeat watcher.

    Parameters
    ----------
    clock:
        Global clock used both for timestamps and for scheduling the
        periodic sweep.
    timeout:
        Seconds of heartbeat silence before a light turns red.
    sweep_interval:
        How often the monitor re-evaluates all lights.
    """

    def __init__(
        self,
        clock: VirtualClock,
        timeout: float = 1.0,
        sweep_interval: float = 0.25,
    ) -> None:
        if timeout <= 0:
            raise SessionError(f"timeout must be positive, got {timeout!r}")
        if sweep_interval <= 0:
            raise SessionError(
                f"sweep interval must be positive, got {sweep_interval!r}"
            )
        self.clock = clock
        self.timeout = timeout
        self.sweep_interval = sweep_interval
        self._last_heard: dict[str, float] = {}
        self._lights: dict[str, Light] = {}
        self.transitions: list[LightTransition] = []
        self._running = False

    # ------------------------------------------------------------------
    # Registration and heartbeats
    # ------------------------------------------------------------------
    def watch(self, member: str) -> None:
        """Start watching a member; the light starts green."""
        if member in self._lights:
            raise SessionError(f"already watching {member!r}")
        now = self.clock.now()
        self._last_heard[member] = now
        self._lights[member] = Light.GREEN
        self.transitions.append(LightTransition(member, now, Light.GREEN))

    def unwatch(self, member: str) -> None:
        """Stop watching a member (no-op when unknown)."""
        self._lights.pop(member, None)
        self._last_heard.pop(member, None)

    def heartbeat(self, member: str) -> None:
        """Record a heartbeat; may flip a red light back to green."""
        if member not in self._lights:
            raise SessionError(f"heartbeat from unwatched member {member!r}")
        now = self.clock.now()
        self._last_heard[member] = now
        if self._lights[member] is Light.RED:
            self._set_light(member, Light.GREEN, now)

    # ------------------------------------------------------------------
    # Sweeping
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic sweep (idempotent)."""
        if self._running:
            return
        self._running = True
        self.clock.call_later(self.sweep_interval, self._sweep)

    def stop(self) -> None:
        """Halt the periodic sweep."""
        self._running = False

    def _sweep(self) -> None:
        if not self._running:
            return
        now = self.clock.now()
        for member, last in self._last_heard.items():
            silent = now - last
            if silent > self.timeout and self._lights[member] is Light.GREEN:
                self._set_light(member, Light.RED, now)
        self.clock.call_later(self.sweep_interval, self._sweep)

    def _set_light(self, member: str, light: Light, now: float) -> None:
        self._lights[member] = light
        self.transitions.append(LightTransition(member, now, light))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def light_of(self, member: str) -> Light:
        """The member's current light colour."""
        if member not in self._lights:
            raise SessionError(f"not watching {member!r}")
        return self._lights[member]

    def red_members(self) -> list[str]:
        """Members whose light is currently red."""
        return [m for m, light in self._lights.items() if light is Light.RED]

    def detection_latency(self, member: str, disconnect_time: float) -> float:
        """Time from a known disconnect until the light turned red.

        Raises
        ------
        SessionError
            If the light never turned red after ``disconnect_time``.
        """
        for transition in self.transitions:
            if (
                transition.member == member
                and transition.light is Light.RED
                and transition.time >= disconnect_time
            ):
                return transition.time - disconnect_time
        raise SessionError(
            f"light of {member!r} never turned red after t={disconnect_time}"
        )
