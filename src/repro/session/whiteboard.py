"""The shared whiteboard / message window (Figure 2).

The DMPS communication window has a message area and a whiteboard that
all session members see.  The server owns the authoritative copy:
a post is *accepted* only when floor control allows the author to
deliver at that moment, then broadcast to every client replica.

:class:`Whiteboard` is that authoritative, ordered state;
:class:`WhiteboardReplica` is the per-client copy that applies
broadcast updates (possibly out of order) and converges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SessionError

__all__ = ["BoardEntry", "Whiteboard", "WhiteboardReplica"]


@dataclass(frozen=True)
class BoardEntry:
    """One accepted contribution."""

    sequence: int
    author: str
    content: str
    kind: str  # "message" | "annotation"
    accepted_at: float


class Whiteboard:
    """The server's authoritative board for one group."""

    def __init__(self, group: str) -> None:
        self.group = group
        self._entries: list[BoardEntry] = []
        self.rejected = 0

    def accept(self, author: str, content: str, kind: str, now: float) -> BoardEntry:
        """Append an allowed post; caller has already checked the floor."""
        if kind not in ("message", "annotation"):
            raise SessionError(f"unknown post kind {kind!r}")
        entry = BoardEntry(
            sequence=len(self._entries),
            author=author,
            content=content,
            kind=kind,
            accepted_at=now,
        )
        self._entries.append(entry)
        return entry

    def reject(self) -> None:
        """Count a post refused by floor control."""
        self.rejected += 1

    def entries(self) -> list[BoardEntry]:
        """All accepted entries in order (a copy)."""
        return list(self._entries)

    def entries_by(self, author: str) -> list[BoardEntry]:
        """Accepted entries of one author."""
        return [entry for entry in self._entries if entry.author == author]

    def authors(self) -> set[str]:
        """Authors with at least one accepted entry."""
        return {entry.author for entry in self._entries}

    def annotations(self) -> list[BoardEntry]:
        """Accepted entries of kind 'annotation'."""
        return [entry for entry in self._entries if entry.kind == "annotation"]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)


class WhiteboardReplica:
    """A client's convergent copy of the board.

    Updates may arrive out of order (different link latencies); the
    replica buffers gaps and exposes only the in-order prefix, so what a
    student *sees* is always a prefix of the authoritative board.
    """

    def __init__(self, group: str) -> None:
        self.group = group
        self._applied: list[BoardEntry] = []
        self._pending: dict[int, BoardEntry] = {}

    def apply(self, entry: BoardEntry) -> None:
        """Apply one broadcast update (idempotent)."""
        if entry.sequence < len(self._applied):
            return  # duplicate
        self._pending[entry.sequence] = entry
        while len(self._applied) in self._pending:
            self._applied.append(self._pending.pop(len(self._applied)))

    def visible(self) -> list[BoardEntry]:
        """The in-order prefix this client currently sees."""
        return list(self._applied)

    def missing(self) -> int:
        """Updates buffered but not yet visible (gap size indicator)."""
        return len(self._pending)

    def converged_with(self, board: Whiteboard) -> bool:
        """Replica shows exactly the authoritative contents."""
        return self._applied == board.entries()
