"""DMPS server and client endpoints over the simulated network.

This is the system of Figures 1–3: a server that owns the global clock,
the group administration, the floor control and the authoritative
whiteboard; and clients that join, sync their clocks, heartbeat, post to
the message window / whiteboard, and issue floor requests.

Everything runs on the shared :class:`~repro.clock.virtual.VirtualClock`
through :class:`~repro.net.simnet.Network`, so a whole classroom session
is a deterministic, seedable simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..clock.discipline import discipline_from_sample
from ..clock.drift import DriftingClock
from ..clock.sync import CristianSyncClient, SyncSample
from ..clock.virtual import PeriodicHandle, VirtualClock, periodic
from ..core.modes import FCMMode
from ..core.resources import ResourceModel, ResourceVector
from ..core.server import FloorControlServer
from ..errors import FloorControlError, SessionError
from ..net.simnet import Network
from .messages import (
    FloorDecisionMsg,
    FloorRequestMsg,
    Heartbeat,
    Hello,
    InviteMsg,
    InviteResponseMsg,
    ModeChangeMsg,
    OpenSubgroupMsg,
    Post,
    ReleaseFloorMsg,
    SubgroupOpenedMsg,
    SyncRequestMsg,
    SyncResponseMsg,
    TokenNotifyMsg,
    Welcome,
    WhiteboardUpdate,
)
from .presence import PresenceMonitor
from .whiteboard import BoardEntry, Whiteboard, WhiteboardReplica

__all__ = ["DMPSServer", "DMPSClient"]


class DMPSServer:
    """The server endpoint: floor control + whiteboards + presence.

    Parameters
    ----------
    clock:
        Global clock (shared with the network).
    network:
        The simulator; the server registers host ``host_name`` on it.
    resources:
        Station resource model for arbitration; a generous default is
        created when omitted.
    """

    def __init__(
        self,
        clock: VirtualClock,
        network: Network,
        host_name: str = "server",
        chair: str = "teacher",
        resources: ResourceModel | None = None,
        presence_timeout: float = 1.0,
        log_capacity: int | None = None,
    ) -> None:
        self.clock = clock
        self.network = network
        self.host_name = host_name
        if resources is None:
            resources = ResourceModel(
                ResourceVector(network_kbps=100_000.0, cpu_share=16.0, memory_mb=8192.0)
            )
        self.control = FloorControlServer(
            clock, resources, chair=chair, log_capacity=log_capacity
        )
        self.presence = PresenceMonitor(clock, timeout=presence_timeout)
        self._boards: dict[str, Whiteboard] = {
            self.control.session_group: Whiteboard(self.control.session_group)
        }
        #: member -> client host name.
        self._host_of_member: dict[str, str] = {}
        #: invitation ids already forwarded to their invitee.
        self._forwarded_invitations: set[int] = set()
        network.add_host(host_name, self._on_message)
        self.presence.start()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def session_group(self) -> str:
        return self.control.session_group

    def board(self, group: str | None = None) -> Whiteboard:
        """The whiteboard of a group (defaults to the session)."""
        group = group if group is not None else self.session_group
        if group not in self._boards:
            raise SessionError(f"no whiteboard for group {group!r}")
        return self._boards[group]

    def members(self) -> list[str]:
        """Members that completed the join handshake."""
        return list(self._host_of_member)

    def leave(self, member: str) -> None:
        """Remove a member: floor bookkeeping, presence, and routing.

        Any floor the member holds passes to the next queued member
        (see :meth:`~repro.core.server.FloorControlServer.leave`) and
        the remaining members are notified of the new holder;
        broadcasts stop being addressed to the departed host.
        """
        groups = [
            group.group_id
            for group in self.control.registry.joined_groups(member)
        ]
        self.control.leave(member)
        self.presence.unwatch(member)
        self._host_of_member.pop(member, None)
        for group in groups:
            self._notify_token(group)

    # ------------------------------------------------------------------
    # Group management helpers the chair uses out-of-band
    # ------------------------------------------------------------------
    def open_discussion(self, creator: str) -> str:
        """Create a discussion subgroup with its own board."""
        group_id = self.control.open_discussion(creator)
        self._boards[group_id] = Whiteboard(group_id)
        return group_id

    def open_direct_contact(self, initiator: str, peer: str) -> str:
        """Create a private two-person group and invite the peer."""
        group_id = self.control.open_direct_contact(initiator, peer)
        self._boards[group_id] = Whiteboard(group_id)
        self._forward_invitations(group_id)
        return group_id

    def invite(self, group: str, inviter: str, invitee: str):
        """Send a subgroup invitation and forward it to the invitee."""
        invitation = self.control.invite(group, inviter, invitee)
        self._forward_invitations(group)
        return invitation

    def set_mode(self, mode: FCMMode, by: str, group: str | None = None) -> None:
        """Change a group's floor mode and broadcast it."""
        group = group if group is not None else self.session_group
        self.control.set_mode(group, mode, by=by)
        self._broadcast_group(group, ModeChangeMsg(group=group, mode=mode))

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def _on_message(self, sender_host: str, message) -> None:
        if isinstance(message, Hello):
            self._on_hello(sender_host, message)
        elif isinstance(message, FloorRequestMsg):
            self._on_floor_request(sender_host, message)
        elif isinstance(message, ReleaseFloorMsg):
            self._on_release(sender_host, message)
        elif isinstance(message, Post):
            self._on_post(sender_host, message)
        elif isinstance(message, SyncRequestMsg):
            self._on_sync(sender_host, message)
        elif isinstance(message, Heartbeat):
            self._on_heartbeat(message)
        elif isinstance(message, InviteResponseMsg):
            self._on_invite_response(message)
        elif isinstance(message, OpenSubgroupMsg):
            self._on_open_subgroup(sender_host, message)
        # Unknown messages are dropped silently, as a robust server must.

    def _on_hello(self, sender_host: str, message: Hello) -> None:
        if message.member not in self._host_of_member:
            if message.member != self.control.chair:
                self.control.join(message.member, host=sender_host)
            self._host_of_member[message.member] = sender_host
            self.presence.watch(message.member)
        self.network.send(
            self.host_name,
            sender_host,
            Welcome(
                member=message.member,
                session_group=self.session_group,
                mode=self.control.mode_of(self.session_group),
            ),
        )
        # Catch-up: a late joiner receives the existing board history so
        # its replica converges instead of buffering behind a gap.
        for group, board in self._boards.items():
            if message.member not in self.control.registry.group(group).members:
                continue
            for entry in board.entries():
                self.network.send(
                    self.host_name,
                    sender_host,
                    WhiteboardUpdate(
                        author=entry.author,
                        content=entry.content,
                        kind=entry.kind,
                        group=group,
                        sequence=entry.sequence,
                        accepted_at=entry.accepted_at,
                    ),
                )

    def _on_floor_request(self, sender_host: str, message: FloorRequestMsg) -> None:
        try:
            grant = self.control.request_floor(
                message.member,
                group=message.group,
                mode=message.mode,
                target_member=message.target_member,
                target_group=message.target_group,
                requested_at=message.sent_at,
            )
        except FloorControlError as error:
            # Malformed request (unknown group, unregistered member):
            # answer DENIED instead of taking the server down.
            self.network.send(
                self.host_name,
                sender_host,
                FloorDecisionMsg(
                    member=message.member,
                    outcome="denied",
                    group=message.group or self.session_group,
                    reason=str(error),
                    decided_at=self.clock.now(),
                ),
            )
            return
        self.network.send(
            self.host_name,
            sender_host,
            FloorDecisionMsg(
                member=message.member,
                outcome=grant.outcome.value,
                group=grant.request.group,
                reason=grant.reason,
                decided_at=grant.granted_at,
            ),
        )
        self._notify_token(grant.request.group)

    def _on_release(self, sender_host: str, message: ReleaseFloorMsg) -> None:
        group = message.group if message.group is not None else self.session_group
        try:
            self.control.release_floor(group, message.member, message.successor)
        except FloorControlError:
            # A stale or duplicate release (e.g. the member already lost
            # the floor) must not take the server down.
            return
        self._notify_token(group)

    def _on_post(self, sender_host: str, message: Post) -> None:
        group = message.group if message.group is not None else self.session_group
        board = self._boards.get(group)
        if board is None:
            return
        allowed = message.author in self.control.current_speakers(group)
        if not allowed:
            board.reject()
            return
        entry = board.accept(
            message.author, message.content, message.kind, self.clock.now()
        )
        update = WhiteboardUpdate(
            author=entry.author,
            content=entry.content,
            kind=entry.kind,
            group=group,
            sequence=entry.sequence,
            accepted_at=entry.accepted_at,
        )
        self._broadcast_group(group, update)

    def _on_sync(self, sender_host: str, message: SyncRequestMsg) -> None:
        self.network.send(
            self.host_name,
            sender_host,
            SyncResponseMsg(
                member=message.member,
                sent_local=message.sent_local,
                server_time=self.clock.now(),
            ),
        )

    def _on_heartbeat(self, message: Heartbeat) -> None:
        try:
            self.presence.heartbeat(message.member)
        except SessionError:
            pass  # heartbeat raced ahead of the Hello; ignore

    def _on_invite_response(self, message: InviteResponseMsg) -> None:
        try:
            self.control.respond(message.invitation_id, message.accept)
        except FloorControlError:
            return  # duplicate or stale response; first answer stands

    def _on_open_subgroup(self, sender_host: str, message: OpenSubgroupMsg) -> None:
        """A user creates a discussion subgroup / direct contact over
        the wire ("a user can create a new group to invite others")."""
        try:
            if message.kind == "direct":
                if message.peer is None:
                    return
                group_id = self.open_direct_contact(message.creator, message.peer)
            elif message.kind == "discussion":
                group_id = self.open_discussion(message.creator)
                for invitee in message.invitees:
                    self.invite(group_id, message.creator, invitee)
            else:
                return
        except FloorControlError:
            return  # e.g. creator not in the session: ignore
        self.network.send(
            self.host_name,
            sender_host,
            SubgroupOpenedMsg(
                creator=message.creator, group=group_id, kind=message.kind
            ),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _notify_token(self, group: str) -> None:
        try:
            mode = self.control.mode_of(group)
        except FloorControlError:
            return  # denied request against an unknown group
        if mode is not FCMMode.EQUAL_CONTROL:
            return
        holder = self.control.arbitrator.token(group).holder
        self._broadcast_group(group, TokenNotifyMsg(group=group, holder=holder))

    def _broadcast_group(self, group: str, payload) -> None:
        members = self.control.registry.group(group).members
        for member in members:
            host = self._host_of_member.get(member)
            if host is not None:
                self.network.send(self.host_name, host, payload)

    def _forward_invitations(self, group: str) -> None:
        for member in self.members():
            for invitation in self.control.registry.pending_invitations_for(member):
                if invitation.group_id != group:
                    continue
                if invitation.invitation_id in self._forwarded_invitations:
                    continue
                self._forwarded_invitations.add(invitation.invitation_id)
                host = self._host_of_member.get(member)
                if host is not None:
                    self.network.send(
                        self.host_name,
                        host,
                        InviteMsg(
                            invitation_id=invitation.invitation_id,
                            group=invitation.group_id,
                            inviter=invitation.inviter,
                            invitee=invitation.invitee,
                        ),
                    )


@dataclass
class _ClientState:
    """Mutable client-side view of the session."""

    joined: bool = False
    session_group: str | None = None
    mode: FCMMode | None = None
    token_holder: str | None = None
    last_decision: FloorDecisionMsg | None = None
    pending_invites: list[InviteMsg] = field(default_factory=list)
    #: Subgroups this client created, latest last.
    my_subgroups: list[str] = field(default_factory=list)


class DMPSClient:
    """A participant endpoint (student or teacher station).

    Parameters
    ----------
    member:
        The user's name.
    host_name:
        The network host this client runs on.
    clock_offset, drift_rate:
        Local clock imperfection (see
        :class:`~repro.clock.drift.DriftingClock`).
    auto_accept_invites:
        When ``True`` the client immediately accepts incoming
        invitations (convenient in workloads).
    """

    def __init__(
        self,
        member: str,
        host_name: str,
        network: Network,
        server_host: str = "server",
        clock_offset: float = 0.0,
        drift_rate: float = 0.0,
        auto_accept_invites: bool = True,
    ) -> None:
        self.member = member
        self.host_name = host_name
        self.network = network
        self.server_host = server_host
        self.clock: VirtualClock = network.clock
        self.local_clock = DriftingClock(
            self.clock, offset=clock_offset, drift_rate=drift_rate
        )
        self.sync = CristianSyncClient(self.local_clock)
        self.state = _ClientState()
        self.replicas: dict[str, WhiteboardReplica] = {}
        self.auto_accept_invites = auto_accept_invites
        self.decisions: list[FloorDecisionMsg] = []
        self._heartbeats: PeriodicHandle | None = None
        self._sync_loop: PeriodicHandle | None = None
        #: When True, each sync response also steps the local clock
        #: (Cristian discipline), keeping skew near the RTT error bound.
        self.discipline_clock = False
        network.add_host(host_name, self._on_message)

    # ------------------------------------------------------------------
    # Outbound actions
    # ------------------------------------------------------------------
    def join(self, is_chair: bool = False) -> None:
        """Send the Hello handshake to the server."""
        self._send(Hello(member=self.member, is_chair=is_chair))

    def request_floor(
        self,
        mode: FCMMode | None = None,
        group: str | None = None,
        target_member: str | None = None,
        target_group: str | None = None,
    ) -> None:
        """Send a floor request (decision arrives asynchronously)."""
        self._send(
            FloorRequestMsg(
                member=self.member,
                mode=mode,
                group=group,
                target_member=target_member,
                target_group=target_group,
                sent_at=self.clock.now(),
            )
        )

    def release_floor(self, group: str | None = None, successor: str | None = None) -> None:
        """Pass the equal-control token onward."""
        self._send(
            ReleaseFloorMsg(member=self.member, group=group, successor=successor)
        )

    def post(self, content: str, kind: str = "message", group: str | None = None) -> None:
        """Send a message/annotation to a group's board."""
        self._send(
            Post(
                author=self.member,
                content=content,
                kind=kind,
                group=group,
                sent_at=self.clock.now(),
            )
        )

    def open_discussion(self, invitees: list[str] | None = None) -> None:
        """Ask the server to create a discussion subgroup chaired by
        this member, inviting ``invitees``.  The created group id
        arrives asynchronously in ``state.my_subgroups``."""
        self._send(
            OpenSubgroupMsg(
                creator=self.member,
                kind="discussion",
                invitees=tuple(invitees or ()),
            )
        )

    def open_direct_contact(self, peer: str) -> None:
        """Ask the server for a private two-person window with ``peer``."""
        self._send(OpenSubgroupMsg(creator=self.member, kind="direct", peer=peer))

    def sync_clock(self) -> None:
        """Send one Cristian probe."""
        self._send(SyncRequestMsg(member=self.member, sent_local=self.local_clock.now()))

    def start_clock_sync(self, interval: float = 5.0, discipline: bool = True) -> None:
        """Probe the server clock every ``interval``; optionally step
        the local clock after each response (sync discipline)."""
        if self._sync_loop is not None:
            return
        self.discipline_clock = discipline
        self.sync_clock()
        self._sync_loop = periodic(self.clock, interval, self.sync_clock)

    def stop_clock_sync(self) -> None:
        """Cancel the periodic sync loop."""
        if self._sync_loop is not None:
            self._sync_loop.cancel()
            self._sync_loop = None

    def start_heartbeats(self, interval: float = 0.25) -> None:
        """Begin periodic liveness beacons (idempotent)."""
        if self._heartbeats is not None:
            return
        self._heartbeats = periodic(
            self.clock,
            interval,
            lambda: self._send(Heartbeat(member=self.member, sent_at=self.clock.now())),
        )

    def stop_heartbeats(self) -> None:
        """Cancel the heartbeat loop."""
        if self._heartbeats is not None:
            self._heartbeats.cancel()
            self._heartbeats = None

    def disconnect(self) -> None:
        """Simulate losing the client (Figure 3's red-light scenario)."""
        self.stop_heartbeats()
        self.network.set_host_up(self.host_name, False)

    def reconnect(self, heartbeat_interval: float = 0.25) -> None:
        """Bring the host back up and resume heartbeats."""
        self.network.set_host_up(self.host_name, True)
        self.start_heartbeats(heartbeat_interval)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def board(self, group: str | None = None) -> list[BoardEntry]:
        """The in-order board entries this client currently sees."""
        group = group if group is not None else self.state.session_group or "session"
        replica = self.replicas.get(group)
        return replica.visible() if replica is not None else []

    def holds_floor(self) -> bool:
        """Whether this client currently holds the token."""
        return self.state.token_holder == self.member

    def estimated_global_time(self) -> float:
        """Global-time estimate after sync (falls back to local time)."""
        if self.sync.synchronized():
            return self.sync.global_now()
        return self.local_clock.now()

    # ------------------------------------------------------------------
    # Inbound dispatch
    # ------------------------------------------------------------------
    def _on_message(self, sender_host: str, message) -> None:
        if isinstance(message, Welcome):
            self.state.joined = True
            self.state.session_group = message.session_group
            self.state.mode = message.mode
            self.replicas.setdefault(
                message.session_group, WhiteboardReplica(message.session_group)
            )
        elif isinstance(message, FloorDecisionMsg):
            self.state.last_decision = message
            self.decisions.append(message)
        elif isinstance(message, TokenNotifyMsg):
            self.state.token_holder = message.holder
        elif isinstance(message, WhiteboardUpdate):
            replica = self.replicas.setdefault(
                message.group, WhiteboardReplica(message.group)
            )
            replica.apply(
                BoardEntry(
                    sequence=message.sequence,
                    author=message.author,
                    content=message.content,
                    kind=message.kind,
                    accepted_at=message.accepted_at,
                )
            )
        elif isinstance(message, SyncResponseMsg):
            sample = SyncSample(
                request_local=message.sent_local,
                server_time=message.server_time,
                response_local=self.local_clock.now(),
            )
            self.sync.record(sample)
            if self.discipline_clock:
                discipline_from_sample(self.local_clock, sample)
        elif isinstance(message, ModeChangeMsg):
            if message.group == self.state.session_group:
                self.state.mode = message.mode
        elif isinstance(message, InviteMsg):
            self.state.pending_invites.append(message)
            if self.auto_accept_invites:
                self._send(
                    InviteResponseMsg(
                        invitation_id=message.invitation_id,
                        invitee=self.member,
                        accept=True,
                    )
                )
        elif isinstance(message, SubgroupOpenedMsg):
            self.state.my_subgroups.append(message.group)
            self.replicas.setdefault(message.group, WhiteboardReplica(message.group))

    def _send(self, payload) -> None:
        self.network.send(self.host_name, self.server_host, payload)
