"""Wire messages of the DMPS session protocol.

Everything the clients and the server exchange is one of these frozen
dataclasses.  They carry plain data only (names, ids, timestamps) so a
message can be logged, replayed, and asserted on in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.modes import FCMMode

__all__ = [
    "Hello",
    "Welcome",
    "FloorRequestMsg",
    "FloorDecisionMsg",
    "ReleaseFloorMsg",
    "TokenNotifyMsg",
    "Post",
    "WhiteboardUpdate",
    "SyncRequestMsg",
    "SyncResponseMsg",
    "Heartbeat",
    "InviteMsg",
    "InviteResponseMsg",
    "ModeChangeMsg",
    "OpenSubgroupMsg",
    "SubgroupOpenedMsg",
    "SessionMessage",
]


@dataclass(frozen=True)
class Hello:
    """Client joining the session."""

    member: str
    is_chair: bool = False


@dataclass(frozen=True)
class Welcome:
    """Server acknowledging a join; announces the session group."""

    member: str
    session_group: str
    mode: FCMMode


@dataclass(frozen=True)
class FloorRequestMsg:
    """Client-side floor request (becomes a core FloorRequest at the
    server)."""

    member: str
    mode: FCMMode | None = None
    group: str | None = None
    target_member: str | None = None
    target_group: str | None = None
    sent_at: float = 0.0


@dataclass(frozen=True)
class FloorDecisionMsg:
    """Server answer to a floor request."""

    member: str
    outcome: str
    group: str
    reason: str = ""
    decided_at: float = 0.0


@dataclass(frozen=True)
class ReleaseFloorMsg:
    """Holder passes the equal-control token."""

    member: str
    group: str | None = None
    successor: str | None = None


@dataclass(frozen=True)
class TokenNotifyMsg:
    """Server broadcast: the floor changed hands."""

    group: str
    holder: str | None


@dataclass(frozen=True)
class Post:
    """A message-window or whiteboard contribution.

    ``kind`` is ``"message"`` (chat line) or ``"annotation"`` (teacher's
    drawing, Figure 3).
    """

    author: str
    content: str
    kind: str = "message"
    group: str | None = None
    sent_at: float = 0.0


@dataclass(frozen=True)
class WhiteboardUpdate:
    """Server broadcast of an accepted post."""

    author: str
    content: str
    kind: str
    group: str
    sequence: int
    accepted_at: float


@dataclass(frozen=True)
class SyncRequestMsg:
    """Cristian sync probe."""

    member: str
    sent_local: float


@dataclass(frozen=True)
class SyncResponseMsg:
    """Server's global timestamp for a sync probe."""

    member: str
    sent_local: float
    server_time: float


@dataclass(frozen=True)
class Heartbeat:
    """Client liveness beacon for the presence lights."""

    member: str
    sent_at: float = 0.0


@dataclass(frozen=True)
class InviteMsg:
    """Forwarded invitation (group discussion / direct contact)."""

    invitation_id: int
    group: str
    inviter: str
    invitee: str


@dataclass(frozen=True)
class InviteResponseMsg:
    """Invitee's decision."""

    invitation_id: int
    invitee: str
    accept: bool


@dataclass(frozen=True)
class ModeChangeMsg:
    """Server broadcast: the chair changed the floor mode."""

    group: str
    mode: FCMMode


@dataclass(frozen=True)
class OpenSubgroupMsg:
    """Client asks to open a discussion subgroup or direct contact.

    ``kind`` is ``"discussion"`` or ``"direct"``; for direct contact
    ``peer`` names the other member.
    """

    creator: str
    kind: str = "discussion"
    peer: str | None = None
    invitees: tuple[str, ...] = ()


@dataclass(frozen=True)
class SubgroupOpenedMsg:
    """Server reply: the subgroup exists (invitations are in flight)."""

    creator: str
    group: str
    kind: str


#: Union alias used in handler signatures.
SessionMessage = (
    Hello
    | Welcome
    | FloorRequestMsg
    | FloorDecisionMsg
    | ReleaseFloorMsg
    | TokenNotifyMsg
    | Post
    | WhiteboardUpdate
    | SyncRequestMsg
    | SyncResponseMsg
    | Heartbeat
    | InviteMsg
    | InviteResponseMsg
    | ModeChangeMsg
    | OpenSubgroupMsg
    | SubgroupOpenedMsg
)
