"""Asyncio bridge: run a virtual-time session in (scaled) real time.

Tests and benchmarks drive the :class:`~repro.clock.virtual.VirtualClock`
directly — fastest and fully deterministic.  The examples, however, want
to *watch* a classroom session unfold, and participant behaviour is most
naturally written as coroutines.  :class:`RealtimeBridge` provides both:

* :meth:`RealtimeBridge.run` paces virtual events against the wall
  clock (``speed`` virtual seconds per real second);
* :meth:`RealtimeBridge.sleep` lets an ``async`` participant coroutine
  wait in *virtual* time, waking exactly when the simulation reaches
  that instant;
* :meth:`RealtimeBridge.spawn` registers participant coroutines.

Example
-------
::

    bridge = RealtimeBridge(clock, speed=50.0)

    async def student(client):
        await bridge.sleep(1.0)
        client.request_floor()

    bridge.spawn(student(alice))
    asyncio.run(bridge.run(until=30.0))
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Coroutine

from ..clock.virtual import VirtualClock
from ..errors import SessionError

__all__ = ["RealtimeBridge"]


class RealtimeBridge:
    """Paces a virtual clock against asyncio wall time.

    Parameters
    ----------
    clock:
        The simulation clock shared by every component.
    speed:
        Virtual seconds per real second (``float('inf')`` runs as fast
        as possible — useful to smoke-test example scripts).
    """

    def __init__(self, clock: VirtualClock, speed: float = 1.0) -> None:
        if speed <= 0:
            raise SessionError(f"speed must be positive, got {speed!r}")
        self.clock = clock
        self.speed = speed
        self._tasks: list[Coroutine] = []
        self._running = False

    # ------------------------------------------------------------------
    # Participant API
    # ------------------------------------------------------------------
    def spawn(self, coroutine: Coroutine) -> None:
        """Register a participant coroutine started when :meth:`run`
        begins."""
        self._tasks.append(coroutine)

    def sleep(self, virtual_delay: float) -> Awaitable[None]:
        """Await this to pause a participant for ``virtual_delay``
        simulated seconds."""
        event = asyncio.Event()
        self.clock.call_later(virtual_delay, event.set)
        return event.wait()

    async def until_time(self, virtual_time: float) -> None:
        """Pause until the simulation clock reaches ``virtual_time``."""
        if virtual_time <= self.clock.now():
            return
        event = asyncio.Event()
        self.clock.call_at(virtual_time, event.set)
        await event.wait()

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    async def run(self, until: float) -> None:
        """Run the simulation to virtual time ``until``, paced by
        ``speed``, with participant coroutines interleaved.

        A participant coroutine that crashes does not go unnoticed:
        after the simulation window ends and all tasks are cleaned up,
        the first non-cancellation error is re-raised (cancellations of
        still-sleeping participants are the expected way a bounded run
        ends and stay silent)."""
        if self._running:
            raise SessionError("bridge is already running")
        self._running = True
        started = [asyncio.ensure_future(task) for task in self._tasks]
        self._tasks = []
        participant_errors: list[BaseException] = []
        try:
            while self.clock.now() < until:
                # Give participant tasks a chance to schedule new events.
                await asyncio.sleep(0)
                next_time = self.clock.next_event_time()
                if next_time is None or next_time > until:
                    await self._pace(until - self.clock.now())
                    self.clock.run_until(until)
                    break
                await self._pace(next_time - self.clock.now())
                self.clock.step()
            # Let any tasks woken by the final events finish their step.
            await asyncio.sleep(0)
        finally:
            self._running = False
            for task in started:
                if not task.done():
                    task.cancel()
            for task in started:
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                except Exception as error:
                    participant_errors.append(error)
        if participant_errors:
            raise participant_errors[0]

    async def _pace(self, virtual_delta: float) -> None:
        if virtual_delta <= 0 or self.speed == float("inf"):
            return
        await asyncio.sleep(virtual_delta / self.speed)
