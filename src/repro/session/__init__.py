"""DMPS session layer: server/client endpoints, whiteboard, presence.

Public API::

    from repro.session import DMPSServer, DMPSClient, RealtimeBridge
"""

from .dmps import DMPSClient, DMPSServer
from .messages import (
    FloorDecisionMsg,
    FloorRequestMsg,
    Heartbeat,
    Hello,
    InviteMsg,
    InviteResponseMsg,
    ModeChangeMsg,
    Post,
    ReleaseFloorMsg,
    SyncRequestMsg,
    SyncResponseMsg,
    TokenNotifyMsg,
    Welcome,
    WhiteboardUpdate,
)
from .presence import Light, LightTransition, PresenceMonitor
from .report import SessionReport, summarize
from .runner import RealtimeBridge
from .whiteboard import BoardEntry, Whiteboard, WhiteboardReplica

__all__ = [
    "BoardEntry",
    "DMPSClient",
    "DMPSServer",
    "FloorDecisionMsg",
    "FloorRequestMsg",
    "Heartbeat",
    "Hello",
    "InviteMsg",
    "InviteResponseMsg",
    "Light",
    "LightTransition",
    "ModeChangeMsg",
    "Post",
    "PresenceMonitor",
    "RealtimeBridge",
    "SessionReport",
    "ReleaseFloorMsg",
    "SyncRequestMsg",
    "SyncResponseMsg",
    "TokenNotifyMsg",
    "Welcome",
    "Whiteboard",
    "summarize",
    "WhiteboardReplica",
    "WhiteboardUpdate",
]
