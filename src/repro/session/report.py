"""Session reporting: one summary object per classroom run.

The paper's stated future work is "focus[ing] on the performance of
the system".  :func:`summarize` aggregates every layer's counters into
a :class:`SessionReport` — grant latencies, post acceptance, presence
uptime, clock-sync quality, network statistics — and renders it as the
text block the examples print at the end of a run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.events import EventKind
from .dmps import DMPSClient, DMPSServer

__all__ = ["SessionReport", "summarize"]


@dataclass(frozen=True)
class SessionReport:
    """Aggregated statistics of one DMPS session."""

    duration: float
    members: int
    # Floor control
    requests: int
    granted: int
    queued: int
    denied: int
    aborted: int
    token_passes: int
    suspensions: int
    resumptions: int
    # Whiteboard
    posts_accepted: int
    posts_rejected: int
    boards: int
    # Presence
    red_transitions: int
    currently_red: int
    # Network
    messages_sent: int
    messages_delivered: int
    loss_rate: float
    mean_latency: float
    # Clock sync
    synced_clients: int
    max_residual_skew: float
    # Runtime checks (populated when a SessionMonitor is attached)
    checked_invariants: int = 0
    check_violations: int = 0
    # Event-bus dispatch health: listeners that raised (exceptions are
    # isolated, so failures must surface here rather than crash a run).
    listener_errors: int = 0
    # Floor service quality, read from the session's live metrics fold
    # (:mod:`repro.metrics`) when one is attached: paired services,
    # grant-latency summary, and Jain fairness over member shares.
    served: int = 0
    grant_mean: float = 0.0
    grant_p50: float = 0.0
    grant_p95: float = 0.0
    fairness: float = 1.0
    # Causal-plane span count (populated when summarize() is handed a
    # tracer; see repro.trace).
    trace_spans: int = 0

    @property
    def acceptance_rate(self) -> float:
        total = self.posts_accepted + self.posts_rejected
        if total == 0:
            return 1.0
        return self.posts_accepted / total

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"session report ({self.duration:.1f}s, {self.members} members)",
            f"  floor:    {self.requests} requests -> {self.granted} granted, "
            f"{self.queued} queued, {self.denied} denied, {self.aborted} aborted; "
            f"{self.token_passes} token passes",
            f"  media:    {self.suspensions} suspensions, "
            f"{self.resumptions} resumptions",
            f"  boards:   {self.boards} boards, {self.posts_accepted} accepted / "
            f"{self.posts_rejected} rejected "
            f"({self.acceptance_rate * 100:.0f}% acceptance)",
            f"  presence: {self.red_transitions} red-light events, "
            f"{self.currently_red} currently red",
            f"  network:  {self.messages_sent} sent, "
            f"{self.messages_delivered} delivered, "
            f"loss {self.loss_rate * 100:.1f}%, "
            f"mean latency {self.mean_latency * 1000:.1f} ms",
            f"  clocks:   {self.synced_clients} synced, "
            f"max residual skew {self.max_residual_skew * 1000:.1f} ms",
        ]
        if self.served:
            lines.insert(
                2,
                f"  latency:  {self.served} served, grant p50 "
                f"{self.grant_p50 * 1000:.1f} ms / p95 "
                f"{self.grant_p95 * 1000:.1f} ms, "
                f"fairness {self.fairness:.3f}",
            )
        if self.checked_invariants:
            lines.append(
                f"  checks:   {self.checked_invariants} invariants monitored, "
                f"{self.check_violations} violations"
            )
        if self.listener_errors:
            lines.append(
                f"  events:   {self.listener_errors} listener errors "
                f"(dispatch isolated; see bus.listener_errors)"
            )
        if self.trace_spans:
            lines.append(
                f"  trace:    {self.trace_spans} causal spans "
                f"(deterministic plane; see repro.trace)"
            )
        return "\n".join(lines)


def summarize(
    server: DMPSServer,
    clients: list[DMPSClient] | None = None,
    monitor=None,
    metrics=None,
    tracer=None,
) -> SessionReport:
    """Build a :class:`SessionReport` from a server (and its clients).

    ``monitor`` is an optional attached
    :class:`~repro.check.monitor.SessionMonitor`; its invariant count
    and recorded violations become the report's ``checks`` line.
    ``metrics`` is the session's live
    :class:`~repro.metrics.fold.MetricsFold`: when given, event counts
    come from the fold's all-time state (correct even when a bounded
    transcript ring has evicted events) and the report gains the
    latency/fairness block; without it, counts fall back to scanning
    the retained log.
    ``tracer`` is an optional :class:`~repro.trace.causal.CausalTracer`
    (see :meth:`~repro.api.session.Session.report` with
    ``trace=True``); its span count becomes the report's trace line.
    """
    clients = clients or []
    log = server.control.log
    if metrics is not None:
        requests = metrics.count(EventKind.REQUEST)
        token_passes = metrics.count(EventKind.TOKEN_PASS)
        latency = metrics.latency_summary()
        quality = {
            "served": metrics.served,
            "grant_mean": latency["grant_mean"],
            "grant_p50": latency["grant_p50"],
            "grant_p95": latency["grant_p95"],
            "fairness": metrics.fairness(),
        }
    else:
        requests = log.count(EventKind.REQUEST)
        token_passes = log.count(EventKind.TOKEN_PASS)
        quality = {}
    stats = server.control.arbitrator.stats
    boards = server._boards
    accepted = sum(len(board) for board in boards.values())
    rejected = sum(board.rejected for board in boards.values())
    red_events = [
        transition
        for transition in server.presence.transitions
        if transition.light.value == "red"
    ]
    synced = [client for client in clients if client.sync.synchronized()]
    residuals = [abs(client.local_clock.skew()) for client in synced]
    return SessionReport(
        duration=server.clock.now(),
        members=len(server.members()),
        requests=requests,
        granted=stats.granted,
        queued=stats.queued,
        denied=stats.denied,
        aborted=stats.aborted,
        token_passes=token_passes,
        suspensions=server.control.arbitrator.suspension.suspensions,
        resumptions=server.control.arbitrator.suspension.resumptions,
        posts_accepted=accepted,
        posts_rejected=rejected,
        boards=len(boards),
        red_transitions=len(red_events),
        currently_red=len(server.presence.red_members()),
        messages_sent=server.network.stats.sent,
        messages_delivered=server.network.stats.delivered,
        loss_rate=server.network.stats.loss_rate,
        mean_latency=server.network.stats.mean_latency,
        synced_clients=len(synced),
        max_residual_skew=max(residuals, default=0.0),
        checked_invariants=len(monitor.names) if monitor is not None else 0,
        check_violations=len(monitor.violations) if monitor is not None else 0,
        listener_errors=log.listener_error_count,
        trace_spans=len(tracer.spans()) if tracer is not None else 0,
        **quality,
    )
